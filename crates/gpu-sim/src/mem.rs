//! Device memory buffers and the shared-memory visibility model.

use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};

/// Handle to a device buffer, global across all GPUs of a [`crate::GpuSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufId(pub u32);

impl BufId {
    pub fn as_operand(self) -> crate::isa::Operand {
        crate::isa::Operand::Imm(self.0 as u64)
    }
}

/// Backing contents of a buffer.
///
/// Dense buffers hold real 64-bit words (exact semantics, O(n) streaming).
/// Synthetic buffers describe f64 contents by a closed form so multi-gigabyte
/// reductions can be streamed in O(1) per thread — the workload-generation
/// substitute for the paper's giant device arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BufData {
    Dense(Vec<u64>),
    /// f64 value at index i is `a + b * i`; length `len` words.
    Linear {
        a: f64,
        b: f64,
        len: u64,
    },
}

/// A device memory allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Buffer {
    /// Owning device.
    pub device: usize,
    pub data: BufData,
}

/// A byte-exact snapshot of every buffer in a [`crate::GpuSystem`], taken by
/// [`crate::GpuSystem::checkpoint`] before a recoverable launch's first
/// attempt and restored by [`crate::GpuSystem::restore`] before each retry.
///
/// Exactness argument: buffer words are the *only* launch-visible mutable
/// state a [`crate::GpuSystem`] carries between launches (allocation ids are
/// positional, the arch/topology are immutable `Arc`s), and `BufData` holds
/// them as plain `u64` words / closed-form descriptors with no float
/// accumulation — so clone-and-restore reproduces the pre-launch machine
/// state bit-for-bit, and a retried attempt replays exactly the first one
/// modulo the things the retry deliberately changes (fault arming, evicted
/// ranks, backoff clock).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemCheckpoint {
    pub(crate) bufs: Vec<Buffer>,
}

impl MemCheckpoint {
    /// Number of buffers captured.
    pub fn num_buffers(&self) -> usize {
        self.bufs.len()
    }

    /// Total words captured across all buffers (synthetic buffers count
    /// their logical length; their storage stays O(1)).
    pub fn words(&self) -> u64 {
        self.bufs.iter().map(|b| b.len()).sum()
    }
}

impl Buffer {
    pub fn len(&self) -> u64 {
        match &self.data {
            BufData::Dense(v) => v.len() as u64,
            BufData::Linear { len, .. } => *len,
        }
    }

    /// A same-device, same-length *window* onto this buffer that carries no
    /// contents: an O(1) synthetic descriptor an SM-cluster shard uses to
    /// bounds-check stores it only logs (the coordinator replays the log
    /// against the real buffer at merge time). Never read by eligible
    /// kernels — cluster sharding falls back to the single queue for any
    /// kernel that both loads and stores global memory.
    pub(crate) fn len_only_window(&self) -> Buffer {
        Buffer {
            device: self.device,
            data: BufData::Linear {
                a: 0.0,
                b: 0.0,
                len: self.len(),
            },
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one word (f64 bits for synthetic buffers).
    pub fn load(&self, idx: u64) -> SimResult<u64> {
        if idx >= self.len() {
            return Err(SimError::MemoryFault(format!(
                "load at {idx} beyond buffer of {} words",
                self.len()
            )));
        }
        Ok(match &self.data {
            BufData::Dense(v) => v[idx as usize],
            BufData::Linear { a, b, .. } => (a + b * idx as f64).to_bits(),
        })
    }

    /// Write one word. Writing to a synthetic buffer densifies it first
    /// (allowed only for small synthetic buffers, as a guard against
    /// accidentally materializing gigabytes).
    pub fn store(&mut self, idx: u64, val: u64) -> SimResult<()> {
        if idx >= self.len() {
            return Err(SimError::MemoryFault(format!(
                "store at {idx} beyond buffer of {} words",
                self.len()
            )));
        }
        if let BufData::Linear { len, .. } = &self.data {
            const DENSIFY_LIMIT: u64 = 1 << 22;
            if *len > DENSIFY_LIMIT {
                return Err(SimError::MemoryFault(format!(
                    "store to synthetic buffer of {len} words (> {DENSIFY_LIMIT}) \
                     would materialize it"
                )));
            }
            let dense: Vec<u64> = (0..*len).map(|i| self.load(i).unwrap()).collect();
            self.data = BufData::Dense(dense);
        }
        match &mut self.data {
            BufData::Dense(v) => v[idx as usize] = val,
            BufData::Linear { .. } => unreachable!(),
        }
        Ok(())
    }

    /// Sum of f64 words at `start, start+stride, ...` below `len_cap`,
    /// plus the number of elements touched. Closed form for synthetic
    /// buffers; exact loop for dense ones.
    pub fn strided_sum(&self, start: u64, stride: u64, len_cap: u64) -> SimResult<(f64, u64)> {
        assert!(stride > 0, "stride must be positive");
        let cap = len_cap.min(self.len());
        if len_cap > self.len() {
            return Err(SimError::MemoryFault(format!(
                "stream cap {len_cap} beyond buffer of {} words",
                self.len()
            )));
        }
        if start >= cap {
            return Ok((0.0, 0));
        }
        let n = (cap - start).div_ceil(stride);
        match &self.data {
            BufData::Dense(v) => {
                let mut s = 0.0;
                let mut i = start;
                while i < cap {
                    s += f64::from_bits(v[i as usize]);
                    i += stride;
                }
                Ok((s, n))
            }
            BufData::Linear { a, b, .. } => {
                // sum_{k=0}^{n-1} (a + b(start + k*stride))
                //   = n*a + b*(n*start + stride*n(n-1)/2)
                let nf = n as f64;
                let s = nf * a + b * (nf * start as f64 + stride as f64 * nf * (nf - 1.0) / 2.0);
                Ok((s, n))
            }
        }
    }
}

/// One shared-memory word with the paper-motivated visibility rule: a
/// non-volatile store is visible to its own thread immediately but to other
/// threads only after the writer executes a fence-carrying instruction (any
/// sync). This makes the "nosync" warp reduction *incorrect* — Table V's
/// footnote — while tile/coalesced-sync and volatile versions stay correct.
#[derive(Debug, Clone, Copy, Default)]
struct SmemWord {
    committed: u64,
    /// Uncommitted store: (writer thread id within block, value).
    pending: Option<(u32, u64)>,
}

/// The data-race taxonomy of the racecheck shadow state, named for the
/// second access (the one that completes the hazard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HazardKind {
    /// Read-after-write: a thread read a word another thread wrote in the
    /// same barrier epoch.
    Raw,
    /// Write-after-write: two threads wrote the same word in one epoch.
    Waw,
    /// Write-after-read: a thread overwrote a word another thread read in
    /// the same epoch.
    War,
}

impl HazardKind {
    pub fn slug(&self) -> &'static str {
        match self {
            HazardKind::Raw => "read-after-write",
            HazardKind::Waw => "write-after-write",
            HazardKind::War => "write-after-read",
        }
    }
}

/// One detected cross-thread shared-memory hazard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hazard {
    pub kind: HazardKind,
    /// Shared-memory word address.
    pub addr: u64,
    /// Thread (id within the block) that made the earlier access.
    pub first_thread: u32,
    /// Thread whose access completed the hazard.
    pub second_thread: u32,
    /// Barrier epoch (number of block barriers executed before the hazard).
    pub epoch: u32,
    /// Program counter of the second access, when the engine provided it.
    pub pc: Option<u32>,
}

/// Shadow state per word: the most recent write and the last two distinct
/// readers of the current epoch. Tracking two readers (not all) is the same
/// approximation hardware racecheck tools make — it catches every
/// two-thread race and only under-reports *which* of three-plus concurrent
/// readers conflicted.
#[derive(Debug, Clone, Copy, Default)]
struct Shadow {
    /// (thread, epoch) of the most recent write.
    write: Option<(u32, u32)>,
    /// (thread, epoch) of the most recent read.
    read: Option<(u32, u32)>,
    /// A same-epoch reader distinct from `read`'s thread, if any.
    other_reader: Option<u32>,
}

/// Racecheck bookkeeping, allocated only in `checked()` launches.
#[derive(Debug, Clone)]
struct RaceCheck {
    shadow: Vec<Shadow>,
    /// Barrier epoch: bumped by [`SharedMem::fence_all`] (the block
    /// barrier), the only synchronization that orders *all* threads of the
    /// block. Warp-level syncs do not advance it, so warp-synchronized
    /// exchanges are reported — the same conservative stance as
    /// `cuda-memcheck --tool racecheck`.
    epoch: u32,
    /// Pc of the access being executed, provided by the engine.
    pc: Option<u32>,
    hazards: Vec<Hazard>,
    /// Hazards beyond [`MAX_RECORDED_HAZARDS`] are counted, not stored.
    dropped: u32,
}

/// Per-block cap on stored hazard records (a racing loop would otherwise
/// allocate without bound; the overflow is still counted).
pub const MAX_RECORDED_HAZARDS: usize = 64;

impl RaceCheck {
    fn record(&mut self, h: Hazard) {
        if self.hazards.len() < MAX_RECORDED_HAZARDS {
            self.hazards.push(h);
        } else {
            self.dropped += 1;
        }
    }

    fn on_load(&mut self, thread: u32, addr: u64) {
        let s = &mut self.shadow[addr as usize];
        if let Some((w, e)) = s.write {
            if e == self.epoch && w != thread {
                let h = Hazard {
                    kind: HazardKind::Raw,
                    addr,
                    first_thread: w,
                    second_thread: thread,
                    epoch: self.epoch,
                    pc: self.pc,
                };
                self.record(h);
            }
        }
        let s = &mut self.shadow[addr as usize];
        match s.read {
            Some((r, e)) if e == self.epoch => {
                if r != thread {
                    s.other_reader = Some(r);
                }
            }
            _ => s.other_reader = None,
        }
        s.read = Some((thread, self.epoch));
    }

    fn on_store(&mut self, thread: u32, addr: u64) {
        let s = self.shadow[addr as usize];
        if let Some((w, e)) = s.write {
            if e == self.epoch && w != thread {
                let h = Hazard {
                    kind: HazardKind::Waw,
                    addr,
                    first_thread: w,
                    second_thread: thread,
                    epoch: self.epoch,
                    pc: self.pc,
                };
                self.record(h);
            }
        }
        if let Some((r, e)) = s.read {
            if e == self.epoch {
                let reader = if r != thread {
                    Some(r)
                } else {
                    s.other_reader.filter(|&o| o != thread)
                };
                if let Some(first) = reader {
                    let h = Hazard {
                        kind: HazardKind::War,
                        addr,
                        first_thread: first,
                        second_thread: thread,
                        epoch: self.epoch,
                        pc: self.pc,
                    };
                    self.record(h);
                }
            }
        }
        self.shadow[addr as usize].write = Some((thread, self.epoch));
    }
}

/// Per-block shared memory.
#[derive(Debug, Clone)]
pub struct SharedMem {
    words: Vec<SmemWord>,
    race: Option<RaceCheck>,
}

impl SharedMem {
    pub fn new(words: u32) -> SharedMem {
        SharedMem {
            words: vec![SmemWord::default(); words as usize],
            race: None,
        }
    }

    /// Shared memory with the racecheck shadow state enabled.
    pub fn with_racecheck(words: u32) -> SharedMem {
        SharedMem {
            words: vec![SmemWord::default(); words as usize],
            race: Some(RaceCheck {
                shadow: vec![Shadow::default(); words as usize],
                epoch: 0,
                pc: None,
                hazards: Vec::new(),
                dropped: 0,
            }),
        }
    }

    pub fn racecheck_enabled(&self) -> bool {
        self.race.is_some()
    }

    /// Tell the racecheck shadow which instruction the next access belongs
    /// to (diagnostic context only; a no-op without racecheck).
    pub fn racecheck_at(&mut self, pc: u32) {
        if let Some(rc) = &mut self.race {
            rc.pc = Some(pc);
        }
    }

    /// Drain recorded hazards, returning them with the count of hazards
    /// dropped beyond [`MAX_RECORDED_HAZARDS`].
    pub fn take_hazards(&mut self) -> (Vec<Hazard>, u32) {
        match &mut self.race {
            Some(rc) => {
                let dropped = rc.dropped;
                rc.dropped = 0;
                (std::mem::take(&mut rc.hazards), dropped)
            }
            None => (Vec::new(), 0),
        }
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn check(&self, thread: u32, addr: u64) -> SimResult<usize> {
        if (addr as usize) < self.words.len() {
            Ok(addr as usize)
        } else {
            Err(SimError::MemoryFault(format!(
                "thread {thread}: shared access at word {addr} beyond the block's \
                 {} shared word(s)",
                self.words.len()
            )))
        }
    }

    /// Load as seen by `thread`.
    pub fn load(&mut self, thread: u32, addr: u64, volatile: bool) -> SimResult<u64> {
        let i = self.check(thread, addr)?;
        if let Some(rc) = &mut self.race {
            rc.on_load(thread, addr);
        }
        let w = &self.words[i];
        Ok(match w.pending {
            // A thread always sees its own pending store; a volatile load
            // still cannot see *another* thread's uncommitted store.
            Some((t, v)) if t == thread => v,
            _ => {
                let _ = volatile; // volatile affects timing, not visibility.
                w.committed
            }
        })
    }

    /// Store by `thread`. Volatile stores commit immediately.
    pub fn store(&mut self, thread: u32, addr: u64, val: u64, volatile: bool) -> SimResult<()> {
        let i = self.check(thread, addr)?;
        if let Some(rc) = &mut self.race {
            rc.on_store(thread, addr);
        }
        if volatile {
            self.words[i].committed = val;
            self.words[i].pending = None;
        } else {
            self.words[i].pending = Some((thread, val));
        }
        Ok(())
    }

    /// Commit all pending stores by `thread` (the effect of a fence or any
    /// synchronization instruction executed by that thread).
    pub fn fence(&mut self, thread: u32) {
        for w in &mut self.words {
            if let Some((t, v)) = w.pending {
                if t == thread {
                    w.committed = v;
                    w.pending = None;
                }
            }
        }
    }

    /// Commit everything (block barrier: every participant fences). With
    /// racecheck on, this also advances the barrier epoch: accesses on
    /// opposite sides of a block barrier are ordered and never conflict.
    pub fn fence_all(&mut self) {
        for w in &mut self.words {
            if let Some((_, v)) = w.pending {
                w.committed = v;
                w.pending = None;
            }
        }
        if let Some(rc) = &mut self.race {
            rc.epoch += 1;
        }
    }
}

/// Identity of an agent in the global-memory racecheck: global memory is
/// visible across blocks and devices, so a plain thread id is not enough to
/// tell two accessors apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalAgent {
    /// Device rank within the system.
    pub rank: u32,
    /// Block index on that device.
    pub block: u32,
    /// Thread id within the block.
    pub thread: u32,
}

/// One detected cross-agent global-memory hazard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalHazard {
    pub kind: HazardKind,
    /// Device buffer the racing accesses hit.
    pub buf: u32,
    /// Word index within the buffer.
    pub idx: u64,
    /// Agent that made the earlier access.
    pub first: GlobalAgent,
    /// Agent whose access completed the hazard.
    pub second: GlobalAgent,
    /// Synchronization epoch both accesses fell into.
    pub epoch: u32,
    /// Program counter of the second access, when the engine provided it.
    pub pc: Option<u32>,
}

/// Shadow state per global word — same two-reader approximation as the
/// shared-memory [`Shadow`].
#[derive(Debug, Clone, Copy, Default)]
struct GlobalShadow {
    write: Option<(GlobalAgent, u32)>,
    read: Option<(GlobalAgent, u32)>,
    other_reader: Option<GlobalAgent>,
}

/// Launch-wide racecheck over plain global loads and stores.
///
/// Mirrors the shared-memory shadow, with two deliberate differences:
///
/// * **Scope.** One instance covers the whole launch (all blocks, all
///   devices), because global memory is the medium every cross-block
///   primitive communicates through.
/// * **Epoch rules.** The single launch-wide epoch advances on events that
///   order *global* accesses: grid/multi-grid barriers, memory fences, and
///   every successful atomic or flag operation (`atom.*`, satisfied
///   `wait.ge`, `signal`). Block barriers do *not* advance it — they only
///   order threads of one block, and bumping a launch-wide counter for them
///   would hide true cross-block races. Atomic accesses themselves are
///   never recorded in the shadow: they are the synchronization, not the
///   race. The cost of the coarse launch-wide epoch is missed reports (an
///   unrelated atomic can separate two racing plain accesses), never false
///   ones on correctly flag-synchronized handoffs.
#[derive(Debug, Clone, Default)]
pub struct GlobalRaceCheck {
    shadow: std::collections::HashMap<(u32, u64), GlobalShadow>,
    epoch: u32,
    pc: Option<u32>,
    hazards: Vec<GlobalHazard>,
    /// Hazards beyond [`MAX_RECORDED_HAZARDS`] are counted, not stored.
    dropped: u32,
}

impl GlobalRaceCheck {
    pub fn new() -> GlobalRaceCheck {
        GlobalRaceCheck::default()
    }

    /// Record the pc of the access about to execute (for reports).
    pub fn at(&mut self, pc: u32) {
        self.pc = Some(pc);
    }

    /// A scope-appropriate synchronization event executed: advance the
    /// launch-wide epoch so accesses separated by it never conflict.
    pub fn sync_event(&mut self) {
        self.epoch += 1;
    }

    /// Drain recorded hazards (insertion order — the engine's deterministic
    /// execution order) and the overflow count.
    pub fn take_hazards(&mut self) -> (Vec<GlobalHazard>, u32) {
        (
            std::mem::take(&mut self.hazards),
            std::mem::take(&mut self.dropped),
        )
    }

    fn record(&mut self, h: GlobalHazard) {
        if self.hazards.len() < MAX_RECORDED_HAZARDS {
            self.hazards.push(h);
        } else {
            self.dropped += 1;
        }
    }

    pub fn on_load(&mut self, agent: GlobalAgent, buf: u32, idx: u64) {
        let epoch = self.epoch;
        let pc = self.pc;
        let s = self.shadow.entry((buf, idx)).or_default();
        let hazard = match s.write {
            Some((w, e)) if e == epoch && w != agent => Some(GlobalHazard {
                kind: HazardKind::Raw,
                buf,
                idx,
                first: w,
                second: agent,
                epoch,
                pc,
            }),
            _ => None,
        };
        match s.read {
            Some((r, e)) if e == epoch => {
                if r != agent {
                    s.other_reader = Some(r);
                }
            }
            _ => s.other_reader = None,
        }
        s.read = Some((agent, epoch));
        if let Some(h) = hazard {
            self.record(h);
        }
    }

    pub fn on_store(&mut self, agent: GlobalAgent, buf: u32, idx: u64) {
        let epoch = self.epoch;
        let pc = self.pc;
        let s = *self.shadow.entry((buf, idx)).or_default();
        if let Some((w, e)) = s.write {
            if e == epoch && w != agent {
                self.record(GlobalHazard {
                    kind: HazardKind::Waw,
                    buf,
                    idx,
                    first: w,
                    second: agent,
                    epoch,
                    pc,
                });
            }
        }
        if let Some((r, e)) = s.read {
            if e == epoch {
                let reader = if r != agent {
                    Some(r)
                } else {
                    s.other_reader.filter(|&o| o != agent)
                };
                if let Some(first) = reader {
                    self.record(GlobalHazard {
                        kind: HazardKind::War,
                        buf,
                        idx,
                        first,
                        second: agent,
                        epoch,
                        pc,
                    });
                }
            }
        }
        self.shadow.entry((buf, idx)).or_default().write = Some((agent, epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(vals: &[f64]) -> Buffer {
        Buffer {
            device: 0,
            data: BufData::Dense(vals.iter().map(|v| v.to_bits()).collect()),
        }
    }

    #[test]
    fn dense_load_store_round_trip() {
        let mut b = dense(&[1.0, 2.0, 3.0]);
        assert_eq!(f64::from_bits(b.load(1).unwrap()), 2.0);
        b.store(1, 9.5f64.to_bits()).unwrap();
        assert_eq!(f64::from_bits(b.load(1).unwrap()), 9.5);
    }

    #[test]
    fn out_of_bounds_faults() {
        let b = dense(&[1.0]);
        assert!(matches!(b.load(1), Err(SimError::MemoryFault(_))));
        let mut b = dense(&[1.0]);
        assert!(b.store(5, 0).is_err());
    }

    #[test]
    fn linear_buffer_matches_dense_sum() {
        let lin = Buffer {
            device: 0,
            data: BufData::Linear {
                a: 0.5,
                b: 0.25,
                len: 1000,
            },
        };
        let vals: Vec<f64> = (0..1000).map(|i| 0.5 + 0.25 * i as f64).collect();
        let den = dense(&vals);
        for (start, stride) in [(0u64, 1u64), (3, 7), (999, 1), (0, 999), (5, 128)] {
            let (a, na) = lin.strided_sum(start, stride, 1000).unwrap();
            let (b, nb) = den.strided_sum(start, stride, 1000).unwrap();
            assert_eq!(na, nb, "count start={start} stride={stride}");
            assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn strided_sum_start_beyond_cap_is_empty() {
        let b = dense(&[1.0, 2.0]);
        let (s, n) = b.strided_sum(5, 1, 2).unwrap();
        assert_eq!((s, n), (0.0, 0));
    }

    #[test]
    fn strided_sum_rejects_cap_beyond_len() {
        let b = dense(&[1.0, 2.0]);
        assert!(b.strided_sum(0, 1, 3).is_err());
    }

    #[test]
    fn huge_synthetic_store_is_rejected() {
        let mut b = Buffer {
            device: 0,
            data: BufData::Linear {
                a: 0.0,
                b: 1.0,
                len: 1 << 30,
            },
        };
        assert!(b.store(0, 0).is_err());
    }

    #[test]
    fn small_synthetic_densifies_on_store() {
        let mut b = Buffer {
            device: 0,
            data: BufData::Linear {
                a: 1.0,
                b: 0.0,
                len: 4,
            },
        };
        b.store(2, 7.0f64.to_bits()).unwrap();
        assert_eq!(f64::from_bits(b.load(2).unwrap()), 7.0);
        assert_eq!(f64::from_bits(b.load(0).unwrap()), 1.0);
    }

    #[test]
    fn smem_own_store_visible_others_stale() {
        let mut s = SharedMem::new(4);
        s.store(0, 2, 5, false).unwrap();
        assert_eq!(s.load(0, 2, false).unwrap(), 5, "own store visible");
        assert_eq!(s.load(1, 2, false).unwrap(), 0, "other thread sees stale");
        // Volatile load does not reveal another thread's pending store.
        assert_eq!(s.load(1, 2, true).unwrap(), 0);
    }

    #[test]
    fn smem_fence_commits_only_own_stores() {
        let mut s = SharedMem::new(4);
        s.store(0, 0, 10, false).unwrap();
        s.store(1, 1, 11, false).unwrap();
        s.fence(0);
        assert_eq!(s.load(2, 0, false).unwrap(), 10);
        assert_eq!(s.load(2, 1, false).unwrap(), 0);
        s.fence_all();
        assert_eq!(s.load(2, 1, false).unwrap(), 11);
    }

    #[test]
    fn smem_volatile_store_commits_immediately() {
        let mut s = SharedMem::new(2);
        s.store(0, 0, 42, true).unwrap();
        assert_eq!(s.load(1, 0, false).unwrap(), 42);
    }

    #[test]
    fn smem_bounds_fault_names_thread_and_capacity() {
        let mut s = SharedMem::new(2);
        let err = s.load(7, 2, false).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("thread 7"), "{msg}");
        assert!(msg.contains("word 2"), "{msg}");
        assert!(msg.contains("2 shared word(s)"), "{msg}");
        let err = s.store(3, 9, 0, false).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("thread 3"), "{msg}");
        assert!(msg.contains("word 9"), "{msg}");
    }

    #[test]
    fn racecheck_flags_cross_thread_raw() {
        let mut s = SharedMem::with_racecheck(4);
        s.racecheck_at(5);
        s.store(0, 1, 42, false).unwrap();
        s.load(1, 1, false).unwrap();
        let (hz, dropped) = s.take_hazards();
        assert_eq!(dropped, 0);
        assert_eq!(hz.len(), 1, "{hz:?}");
        assert_eq!(hz[0].kind, HazardKind::Raw);
        assert_eq!((hz[0].first_thread, hz[0].second_thread), (0, 1));
        assert_eq!(hz[0].addr, 1);
        assert_eq!(hz[0].pc, Some(5));
    }

    #[test]
    fn racecheck_flags_waw_and_war() {
        let mut s = SharedMem::with_racecheck(4);
        s.store(0, 2, 1, false).unwrap();
        s.store(1, 2, 2, false).unwrap(); // WAW 0→1
        let (hz, _) = s.take_hazards();
        assert_eq!(hz.len(), 1, "{hz:?}");
        assert_eq!(hz[0].kind, HazardKind::Waw);

        let mut s = SharedMem::with_racecheck(4);
        s.load(0, 3, false).unwrap();
        s.store(1, 3, 9, false).unwrap(); // WAR 0→1
        let (hz, _) = s.take_hazards();
        assert!(hz
            .iter()
            .any(|h| h.kind == HazardKind::War && h.first_thread == 0 && h.second_thread == 1));
    }

    #[test]
    fn racecheck_same_thread_and_cross_epoch_are_clean() {
        let mut s = SharedMem::with_racecheck(4);
        // Same thread: write then read, no hazard.
        s.store(0, 0, 1, false).unwrap();
        s.load(0, 0, false).unwrap();
        // Cross-thread but separated by a block barrier: ordered.
        s.store(1, 1, 2, false).unwrap();
        s.fence_all();
        s.load(2, 1, false).unwrap();
        s.store(3, 1, 7, false).unwrap();
        // (thread 2 read and thread 3 wrote in the *same* post-barrier
        // epoch — that WAR is real and must still be flagged.)
        let (hz, _) = s.take_hazards();
        assert_eq!(hz.len(), 1, "{hz:?}");
        assert_eq!(hz[0].kind, HazardKind::War);
        assert_eq!(hz[0].epoch, 1);
    }

    #[test]
    fn racecheck_war_survives_own_read_in_between() {
        // Thread 1 reads, thread 2 reads, then thread 2 writes: the write
        // still races with thread 1's read even though thread 2's own read
        // was the most recent.
        let mut s = SharedMem::with_racecheck(2);
        s.load(1, 0, false).unwrap();
        s.load(2, 0, false).unwrap();
        s.store(2, 0, 5, false).unwrap();
        let (hz, _) = s.take_hazards();
        assert!(
            hz.iter()
                .any(|h| h.kind == HazardKind::War && h.first_thread == 1),
            "{hz:?}"
        );
    }

    #[test]
    fn racecheck_caps_recorded_hazards() {
        let mut s = SharedMem::with_racecheck(1);
        for t in 0..(MAX_RECORDED_HAZARDS as u32 + 10) {
            s.store(t, 0, t as u64, false).unwrap();
        }
        let (hz, dropped) = s.take_hazards();
        assert_eq!(hz.len(), MAX_RECORDED_HAZARDS);
        assert!(dropped > 0);
    }

    #[test]
    fn unchecked_smem_records_nothing() {
        let mut s = SharedMem::new(2);
        assert!(!s.racecheck_enabled());
        s.store(0, 0, 1, false).unwrap();
        s.store(1, 0, 2, false).unwrap();
        let (hz, dropped) = s.take_hazards();
        assert!(hz.is_empty());
        assert_eq!(dropped, 0);
    }

    // --- global racecheck ---

    fn agent(block: u32, thread: u32) -> GlobalAgent {
        GlobalAgent {
            rank: 0,
            block,
            thread,
        }
    }

    #[test]
    fn global_waw_between_blocks_is_flagged() {
        let mut g = GlobalRaceCheck::new();
        g.at(4);
        g.on_store(agent(0, 0), 1, 7);
        g.on_store(agent(1, 0), 1, 7);
        let (hz, dropped) = g.take_hazards();
        assert_eq!(dropped, 0);
        assert_eq!(hz.len(), 1);
        assert_eq!(hz[0].kind, HazardKind::Waw);
        assert_eq!((hz[0].buf, hz[0].idx), (1, 7));
        assert_eq!(hz[0].pc, Some(4));
    }

    #[test]
    fn global_raw_and_war_are_flagged() {
        let mut g = GlobalRaceCheck::new();
        g.on_store(agent(0, 0), 0, 0);
        g.on_load(agent(1, 0), 0, 0);
        let (hz, _) = g.take_hazards();
        assert_eq!(hz.len(), 1);
        assert_eq!(hz[0].kind, HazardKind::Raw);

        let mut g = GlobalRaceCheck::new();
        g.on_load(agent(0, 0), 0, 0);
        g.on_store(agent(1, 0), 0, 0);
        let (hz, _) = g.take_hazards();
        assert_eq!(hz.len(), 1);
        assert_eq!(hz[0].kind, HazardKind::War);
    }

    #[test]
    fn same_agent_and_distinct_words_are_not_races() {
        let mut g = GlobalRaceCheck::new();
        g.on_store(agent(0, 3), 0, 0);
        g.on_store(agent(0, 3), 0, 0); // same thread rewrites its word
        g.on_store(agent(1, 3), 0, 1); // different word
        g.on_store(agent(1, 3), 2, 0); // different buffer
        let (hz, dropped) = g.take_hazards();
        assert!(hz.is_empty(), "{hz:?}");
        assert_eq!(dropped, 0);
    }

    #[test]
    fn sync_event_separates_epochs() {
        // A store handed off through a sync event (fence/atomic/grid
        // barrier in the engine) is ordered: no hazard across the bump.
        let mut g = GlobalRaceCheck::new();
        g.on_store(agent(0, 0), 0, 0);
        g.sync_event();
        g.on_load(agent(1, 0), 0, 0);
        g.on_store(agent(1, 0), 0, 0);
        let (hz, _) = g.take_hazards();
        assert!(hz.is_empty(), "{hz:?}");
    }

    #[test]
    fn second_reader_is_tracked_when_writer_is_the_last_reader() {
        // Two readers in the same epoch, then one of them writes: a
        // single-reader shadow would only remember the writer itself and
        // miss the conflict; the two-reader approximation keeps the other
        // reader and reports the WAR against it.
        let mut g = GlobalRaceCheck::new();
        g.on_load(agent(0, 0), 0, 0);
        g.on_load(agent(1, 0), 0, 0);
        g.on_store(agent(1, 0), 0, 0);
        let (hz, _) = g.take_hazards();
        assert_eq!(hz.len(), 1, "{hz:?}");
        assert_eq!(hz[0].kind, HazardKind::War);
        assert_eq!(hz[0].first, agent(0, 0));
    }

    #[test]
    fn global_racecheck_caps_recorded_hazards() {
        let mut g = GlobalRaceCheck::new();
        g.on_store(agent(0, 0), 0, 0);
        for t in 0..(MAX_RECORDED_HAZARDS as u32 + 10) {
            g.on_store(agent(1, t), 0, 0);
        }
        let (hz, dropped) = g.take_hazards();
        assert_eq!(hz.len(), MAX_RECORDED_HAZARDS);
        assert!(dropped > 0);
    }
}
