//! Device memory buffers and the shared-memory visibility model.

use serde::{Deserialize, Serialize};
use sim_core::{SimError, SimResult};

/// Handle to a device buffer, global across all GPUs of a [`crate::GpuSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BufId(pub u32);

impl BufId {
    pub fn as_operand(self) -> crate::isa::Operand {
        crate::isa::Operand::Imm(self.0 as u64)
    }
}

/// Backing contents of a buffer.
///
/// Dense buffers hold real 64-bit words (exact semantics, O(n) streaming).
/// Synthetic buffers describe f64 contents by a closed form so multi-gigabyte
/// reductions can be streamed in O(1) per thread — the workload-generation
/// substitute for the paper's giant device arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BufData {
    Dense(Vec<u64>),
    /// f64 value at index i is `a + b * i`; length `len` words.
    Linear {
        a: f64,
        b: f64,
        len: u64,
    },
}

/// A device memory allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Buffer {
    /// Owning device.
    pub device: usize,
    pub data: BufData,
}

impl Buffer {
    pub fn len(&self) -> u64 {
        match &self.data {
            BufData::Dense(v) => v.len() as u64,
            BufData::Linear { len, .. } => *len,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read one word (f64 bits for synthetic buffers).
    pub fn load(&self, idx: u64) -> SimResult<u64> {
        if idx >= self.len() {
            return Err(SimError::MemoryFault(format!(
                "load at {idx} beyond buffer of {} words",
                self.len()
            )));
        }
        Ok(match &self.data {
            BufData::Dense(v) => v[idx as usize],
            BufData::Linear { a, b, .. } => (a + b * idx as f64).to_bits(),
        })
    }

    /// Write one word. Writing to a synthetic buffer densifies it first
    /// (allowed only for small synthetic buffers, as a guard against
    /// accidentally materializing gigabytes).
    pub fn store(&mut self, idx: u64, val: u64) -> SimResult<()> {
        if idx >= self.len() {
            return Err(SimError::MemoryFault(format!(
                "store at {idx} beyond buffer of {} words",
                self.len()
            )));
        }
        if let BufData::Linear { len, .. } = &self.data {
            const DENSIFY_LIMIT: u64 = 1 << 22;
            if *len > DENSIFY_LIMIT {
                return Err(SimError::MemoryFault(format!(
                    "store to synthetic buffer of {len} words (> {DENSIFY_LIMIT}) \
                     would materialize it"
                )));
            }
            let dense: Vec<u64> = (0..*len).map(|i| self.load(i).unwrap()).collect();
            self.data = BufData::Dense(dense);
        }
        match &mut self.data {
            BufData::Dense(v) => v[idx as usize] = val,
            BufData::Linear { .. } => unreachable!(),
        }
        Ok(())
    }

    /// Sum of f64 words at `start, start+stride, ...` below `len_cap`,
    /// plus the number of elements touched. Closed form for synthetic
    /// buffers; exact loop for dense ones.
    pub fn strided_sum(&self, start: u64, stride: u64, len_cap: u64) -> SimResult<(f64, u64)> {
        assert!(stride > 0, "stride must be positive");
        let cap = len_cap.min(self.len());
        if len_cap > self.len() {
            return Err(SimError::MemoryFault(format!(
                "stream cap {len_cap} beyond buffer of {} words",
                self.len()
            )));
        }
        if start >= cap {
            return Ok((0.0, 0));
        }
        let n = (cap - start).div_ceil(stride);
        match &self.data {
            BufData::Dense(v) => {
                let mut s = 0.0;
                let mut i = start;
                while i < cap {
                    s += f64::from_bits(v[i as usize]);
                    i += stride;
                }
                Ok((s, n))
            }
            BufData::Linear { a, b, .. } => {
                // sum_{k=0}^{n-1} (a + b(start + k*stride))
                //   = n*a + b*(n*start + stride*n(n-1)/2)
                let nf = n as f64;
                let s = nf * a + b * (nf * start as f64 + stride as f64 * nf * (nf - 1.0) / 2.0);
                Ok((s, n))
            }
        }
    }
}

/// One shared-memory word with the paper-motivated visibility rule: a
/// non-volatile store is visible to its own thread immediately but to other
/// threads only after the writer executes a fence-carrying instruction (any
/// sync). This makes the "nosync" warp reduction *incorrect* — Table V's
/// footnote — while tile/coalesced-sync and volatile versions stay correct.
#[derive(Debug, Clone, Copy, Default)]
struct SmemWord {
    committed: u64,
    /// Uncommitted store: (writer thread id within block, value).
    pending: Option<(u32, u64)>,
}

/// Per-block shared memory.
#[derive(Debug, Clone)]
pub struct SharedMem {
    words: Vec<SmemWord>,
}

impl SharedMem {
    pub fn new(words: u32) -> SharedMem {
        SharedMem {
            words: vec![SmemWord::default(); words as usize],
        }
    }

    pub fn len(&self) -> usize {
        self.words.len()
    }

    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    fn check(&self, addr: u64) -> SimResult<usize> {
        if (addr as usize) < self.words.len() {
            Ok(addr as usize)
        } else {
            Err(SimError::MemoryFault(format!(
                "shared access at {addr} beyond {} words",
                self.words.len()
            )))
        }
    }

    /// Load as seen by `thread`.
    pub fn load(&self, thread: u32, addr: u64, volatile: bool) -> SimResult<u64> {
        let i = self.check(addr)?;
        let w = &self.words[i];
        Ok(match w.pending {
            // A thread always sees its own pending store; a volatile load
            // still cannot see *another* thread's uncommitted store.
            Some((t, v)) if t == thread => v,
            _ => {
                let _ = volatile; // volatile affects timing, not visibility.
                w.committed
            }
        })
    }

    /// Store by `thread`. Volatile stores commit immediately.
    pub fn store(&mut self, thread: u32, addr: u64, val: u64, volatile: bool) -> SimResult<()> {
        let i = self.check(addr)?;
        if volatile {
            self.words[i].committed = val;
            self.words[i].pending = None;
        } else {
            self.words[i].pending = Some((thread, val));
        }
        Ok(())
    }

    /// Commit all pending stores by `thread` (the effect of a fence or any
    /// synchronization instruction executed by that thread).
    pub fn fence(&mut self, thread: u32) {
        for w in &mut self.words {
            if let Some((t, v)) = w.pending {
                if t == thread {
                    w.committed = v;
                    w.pending = None;
                }
            }
        }
    }

    /// Commit everything (block barrier: every participant fences).
    pub fn fence_all(&mut self) {
        for w in &mut self.words {
            if let Some((_, v)) = w.pending {
                w.committed = v;
                w.pending = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(vals: &[f64]) -> Buffer {
        Buffer {
            device: 0,
            data: BufData::Dense(vals.iter().map(|v| v.to_bits()).collect()),
        }
    }

    #[test]
    fn dense_load_store_round_trip() {
        let mut b = dense(&[1.0, 2.0, 3.0]);
        assert_eq!(f64::from_bits(b.load(1).unwrap()), 2.0);
        b.store(1, 9.5f64.to_bits()).unwrap();
        assert_eq!(f64::from_bits(b.load(1).unwrap()), 9.5);
    }

    #[test]
    fn out_of_bounds_faults() {
        let b = dense(&[1.0]);
        assert!(matches!(b.load(1), Err(SimError::MemoryFault(_))));
        let mut b = dense(&[1.0]);
        assert!(b.store(5, 0).is_err());
    }

    #[test]
    fn linear_buffer_matches_dense_sum() {
        let lin = Buffer {
            device: 0,
            data: BufData::Linear {
                a: 0.5,
                b: 0.25,
                len: 1000,
            },
        };
        let vals: Vec<f64> = (0..1000).map(|i| 0.5 + 0.25 * i as f64).collect();
        let den = dense(&vals);
        for (start, stride) in [(0u64, 1u64), (3, 7), (999, 1), (0, 999), (5, 128)] {
            let (a, na) = lin.strided_sum(start, stride, 1000).unwrap();
            let (b, nb) = den.strided_sum(start, stride, 1000).unwrap();
            assert_eq!(na, nb, "count start={start} stride={stride}");
            assert!((a - b).abs() < 1e-6 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn strided_sum_start_beyond_cap_is_empty() {
        let b = dense(&[1.0, 2.0]);
        let (s, n) = b.strided_sum(5, 1, 2).unwrap();
        assert_eq!((s, n), (0.0, 0));
    }

    #[test]
    fn strided_sum_rejects_cap_beyond_len() {
        let b = dense(&[1.0, 2.0]);
        assert!(b.strided_sum(0, 1, 3).is_err());
    }

    #[test]
    fn huge_synthetic_store_is_rejected() {
        let mut b = Buffer {
            device: 0,
            data: BufData::Linear {
                a: 0.0,
                b: 1.0,
                len: 1 << 30,
            },
        };
        assert!(b.store(0, 0).is_err());
    }

    #[test]
    fn small_synthetic_densifies_on_store() {
        let mut b = Buffer {
            device: 0,
            data: BufData::Linear {
                a: 1.0,
                b: 0.0,
                len: 4,
            },
        };
        b.store(2, 7.0f64.to_bits()).unwrap();
        assert_eq!(f64::from_bits(b.load(2).unwrap()), 7.0);
        assert_eq!(f64::from_bits(b.load(0).unwrap()), 1.0);
    }

    #[test]
    fn smem_own_store_visible_others_stale() {
        let mut s = SharedMem::new(4);
        s.store(0, 2, 5, false).unwrap();
        assert_eq!(s.load(0, 2, false).unwrap(), 5, "own store visible");
        assert_eq!(s.load(1, 2, false).unwrap(), 0, "other thread sees stale");
        // Volatile load does not reveal another thread's pending store.
        assert_eq!(s.load(1, 2, true).unwrap(), 0);
    }

    #[test]
    fn smem_fence_commits_only_own_stores() {
        let mut s = SharedMem::new(4);
        s.store(0, 0, 10, false).unwrap();
        s.store(1, 1, 11, false).unwrap();
        s.fence(0);
        assert_eq!(s.load(2, 0, false).unwrap(), 10);
        assert_eq!(s.load(2, 1, false).unwrap(), 0);
        s.fence_all();
        assert_eq!(s.load(2, 1, false).unwrap(), 11);
    }

    #[test]
    fn smem_volatile_store_commits_immediately() {
        let mut s = SharedMem::new(2);
        s.store(0, 0, 42, true).unwrap();
        assert_eq!(s.load(1, 0, false).unwrap(), 42);
    }

    #[test]
    fn smem_bounds_fault() {
        let s = SharedMem::new(2);
        assert!(s.load(0, 2, false).is_err());
    }
}
