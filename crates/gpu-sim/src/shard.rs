//! Intra-launch sharding: discrete-event shards run by a pool of worker
//! threads under conservative time-window synchronization, along one of two
//! decomposition axes — one shard per device *rank* of a multi-device launch,
//! or one shard per *SM cluster* of a single-device launch.
//!
//! # Protocol
//!
//! Each shard owns a disjoint set of warps and blocks and a private
//! [`sim_core::EventQueue`]. Execution proceeds in rounds: a coordinator
//! (worker 0) computes the global minimum next-event time `m` and hands every
//! shard the horizon `m + lookahead`. Shards then drain their local queues
//! strictly below the horizon in parallel and meet back at a barrier.
//!
//! For **by-rank** shards the lookahead is the minimum inter-device flag
//! latency of the (possibly fault-degraded) topology, and the only
//! cross-shard interaction is the multi-grid barrier: a rank reports its
//! arrival at a round boundary, and the release times the coordinator
//! computes from the full arrival vector are at least `2 × lookahead` past
//! the latest arrival (one flag hop to the master device and one back). The
//! latest arrival is itself no earlier than the round's base time `m`, so
//! every release lands at or beyond the *next* round's horizon. Cross-device
//! *memory* traffic has no such latency floor, so the engine rejects it under
//! by-rank sharding (see `shard_guard` in `engine.rs`).
//!
//! For **SM-cluster** shards (single-device launches) the lookahead is the
//! minimum intra-device cross-SM round trip — block-barrier convergence plus
//! the grid-barrier arrival atomic's L2 round trip plus the release flag's L2
//! read (`GpuArch::intra_device_sync_floor_cycles`). Global memory is handled
//! by a window protocol instead of a refusal: each cluster carries either a
//! full copy of the launch's buffers (load-only kernels — nothing ever
//! stores, so copies cannot diverge) or len-only *windows* (store-only
//! kernels — stores are bounds-checked against the window, logged, and
//! replayed onto the real buffers in time order at merge time, on success
//! *and* on the error path). Grid/multi-grid barrier arrival atomics drain
//! through per-cluster outboxes the coordinator resolves quiescently at round
//! boundaries, replaying them on a device-level L2 replica in the
//! single-queue engine's own arrival order. Kernels whose memory behavior the
//! window protocol cannot reproduce exactly (global atomics, flag-cell sync,
//! streamed memory, load+store mixes) fall back to the single queue — see
//! [`single_device_fallback_reason`] and the debug hook
//! [`set_shard_fallback_hook`].
//!
//! # Determinism
//!
//! Logical shards are fixed (per rank, or per SM) and worker threads own
//! shards by static round-robin, so the per-shard event streams — and every
//! merged artifact — are a pure function of the launch, byte-identical at any
//! `--shards` value and identical to `--shards 1`. Merged artifacts order
//! per-shard parts shard-major (matching the single-queue engine's
//! block-major conventions) and time-sort trace events and barrier epochs.

use crate::engine::{Engine, HazardReport, ShardParts, TraceEvent};
use crate::isa::Instr;
use crate::mem::{BufData, Buffer};
use crate::profile::{ProfileReport, EPOCH_CAP};
use crate::system::{ExecReport, GpuSystem, GridLaunch, LaunchKind, RunOptions};
use sim_core::{Pipeline, Ps, SimError, SimResult, StuckWarp};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Process-wide default worker count for [`crate::system::ShardPolicy::Auto`],
/// set by the CLI's `--shards` flag. `0` (the initial value) selects the
/// classic single-queue engine.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default shard worker count used when a launch's
/// [`crate::RunOptions`] leaves sharding on `Auto`. `0` restores the
/// single-queue default.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n, Ordering::Relaxed);
}

/// The process-wide default shard worker count (see [`set_default_shards`]).
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// A sharding-fallback observer (see [`set_shard_fallback_hook`]).
pub type ShardFallbackHook = Box<dyn Fn(&str) + Send + Sync>;

/// Observer for sharding fallback decisions (see [`set_shard_fallback_hook`]).
static FALLBACK_HOOK: Mutex<Option<ShardFallbackHook>> = Mutex::new(None);
/// Reasons already reported to the hook — each distinct reason fires once.
static FALLBACK_SEEN: Mutex<BTreeSet<String>> = Mutex::new(BTreeSet::new());

/// Install (or, with `None`, remove) a process-wide debug hook that observes
/// why a launch that *could* have sharded fell back to the single-queue
/// engine. Each distinct reason is reported once per installation — the hook
/// is a diagnostic, not a log firehose — and installing a hook resets the
/// dedup set. With no hook installed, fallbacks are silent (the selection is
/// an execution strategy, not an error).
pub fn set_shard_fallback_hook(hook: Option<ShardFallbackHook>) {
    FALLBACK_SEEN.lock().unwrap().clear();
    *FALLBACK_HOOK.lock().unwrap() = hook;
}

/// Report one fallback decision to the installed hook, deduplicated by
/// reason text.
pub(crate) fn note_shard_fallback(reason: &str) {
    let hook = FALLBACK_HOOK.lock().unwrap();
    let Some(h) = hook.as_ref() else { return };
    if FALLBACK_SEEN.lock().unwrap().insert(reason.to_string()) {
        h(reason);
    }
}

/// Clear the fallback hook's dedup-once state without touching the hook
/// itself: every reason fires again on its next occurrence. The dedup set
/// is process-global, so without this reset two tests observing fallbacks
/// in one process poison each other — the first one to see a reason eats
/// it for everyone after. Prefer [`shard_fallback_scope`], which resets on
/// both entry and exit.
pub fn reset_shard_fallback_seen() {
    FALLBACK_SEEN.lock().unwrap().clear();
}

/// RAII scope around a fallback hook installation (see
/// [`shard_fallback_scope`]): dropping it uninstalls the hook and clears
/// the dedup set, so observations cannot leak into later code.
#[must_use = "dropping the guard immediately uninstalls the hook"]
pub struct ShardFallbackScope(());

impl Drop for ShardFallbackScope {
    fn drop(&mut self) {
        set_shard_fallback_hook(None);
    }
}

/// Install `hook` for the lifetime of the returned guard. Installation
/// clears the process-global dedup set (as [`set_shard_fallback_hook`]
/// does) and the guard's drop uninstalls the hook and clears it again —
/// the scoped form tests should use so concurrent/later observers start
/// from clean state. Scopes must not be nested or interleaved across
/// threads: there is one process-wide hook slot.
pub fn shard_fallback_scope(hook: ShardFallbackHook) -> ShardFallbackScope {
    set_shard_fallback_hook(Some(hook));
    ShardFallbackScope(())
}

/// Why a single-device launch cannot use SM-cluster sharding, or `None` when
/// it can. The window protocol is exact only when no simulated global-memory
/// effect can cross clusters below the lookahead horizon; every check here
/// guards one way that could happen (see the module docs and METHODOLOGY
/// §16).
pub(crate) fn single_device_fallback_reason(
    sys: &GpuSystem,
    launch: &GridLaunch,
    check: bool,
) -> Option<String> {
    debug_assert_eq!(launch.devices.len(), 1);
    if check {
        return Some(
            "checked run: the launch-wide racecheck orders all agents on one queue".into(),
        );
    }
    if sys.arch.sm_cluster_count() < 2 {
        return Some("1-SM device: nothing to partition".into());
    }
    if sys.params_cross_devices(launch) {
        return Some("kernel params reach another device's memory".into());
    }
    let mut loads = false;
    let mut stores = false;
    for i in &launch.kernel.program.instrs {
        match i {
            Instr::AtomicFAdd { .. }
            | Instr::AtomicCas { .. }
            | Instr::AtomicExch { .. }
            | Instr::AtomicIAdd { .. }
            | Instr::WaitGe { .. }
            | Instr::Signal { .. } => {
                return Some(
                    "kernel uses global atomics or flag-cell sync \
                     (serialized on the device-wide L2 atomic unit)"
                        .into(),
                )
            }
            Instr::MemStream { .. } | Instr::MemCombine { .. } => {
                return Some("kernel streams global memory through the shared DRAM channel".into())
            }
            Instr::LdGlobal { .. } => loads = true,
            Instr::StGlobal { .. } => stores = true,
            _ => {}
        }
    }
    if loads && stores {
        return Some("kernel both loads and stores global memory".into());
    }
    if stores
        && sys
            .bufs
            .iter()
            .any(|b| matches!(b.data, BufData::Linear { .. }))
    {
        return Some("stores could densify a synthetic buffer".into());
    }
    if launch.kind == LaunchKind::Traditional {
        let occ = sys
            .arch
            .occupancy(launch.block_dim, launch.kernel.shared_words * 8);
        if launch.grid_dim > occ.blocks_per_sm.max(1) * sys.arch.num_sms {
            return Some(
                "oversubscribed traditional launch: queued blocks migrate across SMs".into(),
            );
        }
    }
    None
}

/// What the coordinator decided at a round boundary.
#[derive(Clone, Copy)]
enum Control {
    /// Run one more round up to this horizon (exclusive).
    Run(Ps),
    /// Every queue drained with nothing blocked: the launch completed.
    Done,
    /// The run failed; the first error (by shard index) is in `final_err`.
    Fail,
}

/// Run `launch` sharded by rank on up to `workers` threads. Caller guarantees
/// `workers > 0` and a multi-device launch. Buffers are partitioned to their
/// owning shard for the run and merged back afterwards on every path, so
/// `sys` is whole again even when the run errors.
pub(crate) fn execute_sharded(
    sys: &mut GpuSystem,
    launch: &GridLaunch,
    opts: &RunOptions,
    check: bool,
    workers: usize,
) -> SimResult<(
    ExecReport,
    Vec<TraceEvent>,
    HazardReport,
    Option<ProfileReport>,
)> {
    debug_assert!(workers > 0 && launch.devices.len() > 1);
    let ps_per_cycle = sys.arch.clock().ps_per_cycle();
    let (owners, mut orphans, mut shard_systems) = partition_buffers(sys, launch);
    let result = run_shards(&mut shard_systems, launch, opts, check, workers);
    merge_buffers_back(sys, &owners, &mut orphans, &mut shard_systems);
    let parts = result?;
    Ok(merge_artifacts(ps_per_cycle, launch, opts, parts))
}

fn placeholder(device: usize) -> Buffer {
    Buffer {
        device,
        data: BufData::Dense(Vec::new()),
    }
}

/// Move every buffer into the system of the shard whose device owns it;
/// every other shard gets an empty placeholder at the same index so `BufId`s
/// stay valid everywhere (touching a placeholder is impossible: the engine's
/// `shard_guard` rejects cross-device access before any load/store).
/// Buffers on devices outside the launch ride along in `orphans`. Returns
/// `(owner shard per buffer, orphans, shard systems)`.
#[allow(clippy::type_complexity)]
fn partition_buffers(
    sys: &mut GpuSystem,
    launch: &GridLaunch,
) -> (Vec<Option<usize>>, Vec<Option<Buffer>>, Vec<GpuSystem>) {
    let bufs = std::mem::take(&mut sys.bufs);
    let nranks = launch.devices.len();
    let mut owners: Vec<Option<usize>> = Vec::with_capacity(bufs.len());
    let mut orphans: Vec<Option<Buffer>> = Vec::with_capacity(bufs.len());
    let mut shard_systems: Vec<GpuSystem> = (0..nranks)
        .map(|_| GpuSystem {
            arch: sys.arch.clone(),
            topology: sys.topology.clone(),
            bufs: Vec::with_capacity(bufs.len()),
            instr_limit: sys.instr_limit,
        })
        .collect();
    for b in bufs {
        let device = b.device;
        let owner = launch.devices.iter().position(|&d| d == device);
        owners.push(owner);
        for (r, s) in shard_systems.iter_mut().enumerate() {
            if owner != Some(r) {
                s.bufs.push(placeholder(device));
            }
        }
        match owner {
            Some(r) => {
                shard_systems[r].bufs.push(b);
                orphans.push(None);
            }
            None => orphans.push(Some(b)),
        }
    }
    (owners, orphans, shard_systems)
}

/// Reassemble `sys.bufs` from the shard systems and orphans, preserving ids.
fn merge_buffers_back(
    sys: &mut GpuSystem,
    owners: &[Option<usize>],
    orphans: &mut [Option<Buffer>],
    shard_systems: &mut [GpuSystem],
) {
    sys.bufs = owners
        .iter()
        .enumerate()
        .map(|(i, owner)| match owner {
            Some(r) => {
                let slot = &mut shard_systems[*r].bufs[i];
                let device = slot.device;
                std::mem::replace(slot, placeholder(device))
            }
            None => orphans[i].take().expect("unowned buffer kept aside"),
        })
        .collect();
}

/// Drive the round loop on `workers` threads and return per-rank parts.
fn run_shards(
    shard_systems: &mut [GpuSystem],
    launch: &GridLaunch,
    opts: &RunOptions,
    check: bool,
    workers: usize,
) -> SimResult<Vec<ShardParts>> {
    let nranks = shard_systems.len();
    let instr_limit = shard_systems[0].instr_limit;
    let engines: Vec<Mutex<Engine>> = shard_systems
        .iter_mut()
        .enumerate()
        .map(|(r, s)| {
            let mut e = Engine::new(s, launch)
                .with_check(check)
                .with_profile(opts.wants_profile())
                .with_faults(opts.fault_plan())
                .with_watchdog(opts.watchdog_budget())
                .sharded(r);
            if let Some(cap) = opts.trace_cap() {
                e = e.with_trace(cap);
            }
            Mutex::new(e)
        })
        .collect();

    let w = workers.min(nranks).max(1);
    let barrier = Barrier::new(w);
    let control = Mutex::new(Control::Done);
    let errors: Mutex<Vec<(usize, SimError)>> = Mutex::new(Vec::new());
    let final_err: Mutex<Option<SimError>> = Mutex::new(None);
    let watchdog_budget = opts.watchdog_budget();

    std::thread::scope(|scope| {
        for i in 0..w {
            let engines = &engines;
            let barrier = &barrier;
            let control = &control;
            let errors = &errors;
            let final_err = &final_err;
            scope.spawn(move || {
                // Static ownership: shard r belongs to worker r % w, so the
                // schedule — and with it every artifact — is independent of
                // thread timing.
                let my: Vec<usize> = (i..nranks).step_by(w).collect();
                for &r in &my {
                    engines[r].lock().unwrap().setup_shard();
                }
                let mut dead = vec![false; my.len()];
                // Coordinator state (worker 0 only): pending multi-grid
                // arrivals, one slot per rank.
                let mut arrivals: Vec<Option<Ps>> = vec![None; nranks];
                loop {
                    barrier.wait();
                    if i == 0 {
                        *control.lock().unwrap() = coordinate(
                            engines,
                            errors,
                            final_err,
                            &mut arrivals,
                            watchdog_budget,
                            instr_limit,
                        );
                    }
                    barrier.wait();
                    let c = *control.lock().unwrap();
                    match c {
                        Control::Run(horizon) => {
                            for (k, &r) in my.iter().enumerate() {
                                if dead[k] {
                                    continue;
                                }
                                if let Err(e) = engines[r].lock().unwrap().run_window(horizon) {
                                    dead[k] = true;
                                    errors.lock().unwrap().push((r, e));
                                }
                            }
                        }
                        Control::Done | Control::Fail => break,
                    }
                }
            });
        }
    });

    if let Some(e) = final_err.into_inner().unwrap() {
        return Err(e);
    }
    Ok(engines
        .into_iter()
        .map(|m| m.into_inner().unwrap().finish_shard())
        .collect())
}

/// One round boundary: resolve cross-shard effects and pick the next action.
/// Runs with every other worker parked at the barrier, so the engine locks
/// are uncontended.
fn coordinate(
    engines: &[Mutex<Engine>],
    errors: &Mutex<Vec<(usize, SimError)>>,
    final_err: &Mutex<Option<SimError>>,
    arrivals: &mut [Option<Ps>],
    watchdog_budget: Option<Ps>,
    instr_limit: u64,
) -> Control {
    // 1. A shard error ends the run; report the lowest-rank one so the
    //    surfaced error is independent of worker count.
    {
        let mut errs = errors.lock().unwrap();
        if !errs.is_empty() {
            errs.sort_by_key(|&(r, _)| r);
            let (_, e) = errs.remove(0);
            *final_err.lock().unwrap() = Some(e);
            return Control::Fail;
        }
    }
    let mut engs: Vec<_> = engines.iter().map(|m| m.lock().unwrap()).collect();

    // 2. Multi-grid rendezvous: collect fresh arrivals; once every rank has
    //    arrived, resolve release times with the same master-exchange model
    //    the single-queue engine uses and inject them *before* computing the
    //    next horizon, so the release events bound `m` themselves.
    for (slot, e) in arrivals.iter_mut().zip(engs.iter_mut()) {
        if let Some(at) = e.take_mgrid_arrival() {
            debug_assert!(slot.is_none(), "mgrid phases cannot overlap");
            *slot = Some(at);
        }
    }
    if arrivals.iter().all(|a| a.is_some()) {
        let times: Vec<Ps> = arrivals.iter().map(|a| a.unwrap()).collect();
        let releases = engs[0].mgrid_release_times(&times);
        for (e, &rel) in engs.iter_mut().zip(&releases) {
            e.inject_mgrid_release(rel);
        }
        arrivals.iter_mut().for_each(|a| *a = None);
    }

    // 3. Global instruction budget (each shard also trips a local backstop
    //    mid-round; the error text is identical either way).
    if engs.iter().map(|e| e.instrs()).sum::<u64>() > instr_limit {
        *final_err.lock().unwrap() = Some(engs[0].instr_limit_error());
        return Control::Fail;
    }

    // 4. Global minimum next-event time.
    let Some(m) = engs.iter().filter_map(|e| e.next_event_time()).min() else {
        // Every queue drained: completion, or a launch-wide deadlock.
        let mut blocked: Vec<(u32, u32, u32, String)> =
            engs.iter().flat_map(|e| e.blocked_descriptors()).collect();
        if blocked.is_empty() {
            return Control::Done;
        }
        blocked.sort_unstable();
        let at = engs.iter().map(|e| e.now_ps()).max().unwrap_or(Ps::ZERO);
        *final_err.lock().unwrap() = Some(SimError::Deadlock {
            at,
            blocked: blocked.into_iter().map(|(_, _, _, s)| s).collect(),
            faults: engs[0].fault_fingerprint(),
        });
        return Control::Fail;
    };

    // 5. Boundary watchdog: same predicate the single-queue engine applies
    //    per event (`now - last_progress > budget` at the next event time),
    //    evaluated against *global* progress.
    if let Some(budget) = watchdog_budget {
        let last = engs
            .iter()
            .map(|e| e.last_progress_ps())
            .max()
            .unwrap_or(Ps::ZERO);
        if m.saturating_sub(last) > budget {
            let mut stuck: Vec<StuckWarp> = engs.iter().flat_map(|e| e.stuck_warps()).collect();
            stuck.sort_unstable();
            *final_err.lock().unwrap() = Some(SimError::Watchdog {
                at: m,
                last_progress: last,
                stuck,
                faults: engs[0].fault_fingerprint(),
            });
            return Control::Fail;
        }
    }

    // 6. Safe horizon: nothing cross-shard can land below m + lookahead.
    Control::Run(m + engs[0].shard_lookahead())
}

/// Merge per-rank parts into launch-wide artifacts, rank-major like the
/// single-queue engine's block-major iteration, with time-sorted traces and
/// epochs.
fn merge_artifacts(
    ps_per_cycle: f64,
    launch: &GridLaunch,
    opts: &RunOptions,
    parts: Vec<ShardParts>,
) -> (
    ExecReport,
    Vec<TraceEvent>,
    HazardReport,
    Option<ProfileReport>,
) {
    let nranks = parts.len();
    let device_durations: Vec<Ps> = parts.iter().map(|p| p.end_time).collect();
    let report = ExecReport {
        duration: device_durations.iter().copied().max().unwrap_or(Ps::ZERO),
        device_durations,
        blocks_run: launch.grid_dim as u64 * nranks as u64,
        warps_run: parts.iter().map(|p| p.warps_run).sum(),
        instrs_executed: parts.iter().map(|p| p.instrs_executed).sum(),
    };
    let mut trace = Vec::new();
    let mut hazards = HazardReport::default();
    let mut sm_rows = Vec::new();
    let mut epochs = Vec::new();
    let mut epochs_dropped = 0u64;
    for p in parts {
        trace.extend(p.trace);
        hazards.records.extend(p.hazards.records);
        hazards.dropped += p.hazards.dropped;
        hazards.global.extend(p.hazards.global);
        hazards.global_dropped += p.hazards.global_dropped;
        sm_rows.extend(p.sm_rows);
        epochs.extend(p.epochs);
        epochs_dropped += p.epochs_dropped;
    }
    // Stable sort of the rank-major concatenation = ordered by (time, rank)
    // with per-shard execution order preserved at full ties.
    trace.sort_by_key(|e| e.at);
    if let Some(cap) = opts.trace_cap() {
        trace.truncate(cap);
    }
    epochs.sort_by_key(|e| (e.at_ps, e.rank));
    if epochs.len() > EPOCH_CAP {
        epochs_dropped += (epochs.len() - EPOCH_CAP) as u64;
        epochs.truncate(EPOCH_CAP);
    }
    let profile = opts.wants_profile().then(|| {
        ProfileReport::from_parts(
            ps_per_cycle,
            launch.kernel.name.clone(),
            sm_rows,
            epochs,
            epochs_dropped,
        )
    });
    (report, trace, hazards, profile)
}

// ===== SM-cluster sharding (single-device launches) ==========================

/// Run a single-device `launch` sharded by SM cluster on up to `workers`
/// threads. Caller guarantees `workers > 0`, one device, and
/// [`single_device_fallback_reason`] returned `None`. The caller's buffers
/// are never partitioned — clusters run on copies or len-only windows — and
/// logged stores are merged back in time order on every path, so `sys`
/// reflects everything that executed even when the run errors.
pub(crate) fn execute_cluster_sharded(
    sys: &mut GpuSystem,
    launch: &GridLaunch,
    opts: &RunOptions,
    check: bool,
    workers: usize,
) -> SimResult<(
    ExecReport,
    Vec<TraceEvent>,
    HazardReport,
    Option<ProfileReport>,
)> {
    debug_assert!(workers > 0 && launch.devices.len() == 1 && !check);
    let ps_per_cycle = sys.arch.clock().ps_per_cycle();
    let nclusters = sys.arch.sm_cluster_count() as usize;
    // Load-only kernels read buffers nothing ever writes, so a full copy per
    // cluster is exact; otherwise (store-only or no global memory) a len-only
    // window is enough — stores are bounds-checked against it and logged for
    // the coordinator's ordered merge-back.
    let loads = launch
        .kernel
        .program
        .instrs
        .iter()
        .any(|i| matches!(i, Instr::LdGlobal { .. }));
    let mut cluster_systems: Vec<GpuSystem> = (0..nclusters)
        .map(|_| GpuSystem {
            arch: sys.arch.clone(),
            topology: sys.topology.clone(),
            bufs: if loads {
                sys.bufs.clone()
            } else {
                sys.bufs.iter().map(Buffer::len_only_window).collect()
            },
            instr_limit: sys.instr_limit,
        })
        .collect();
    let (err, mut parts) = run_cluster_shards(&mut cluster_systems, launch, opts, workers);
    merge_cluster_stores(sys, &mut parts);
    if let Some(e) = err {
        return Err(e);
    }
    Ok(merge_cluster_artifacts(ps_per_cycle, launch, opts, parts))
}

/// Drive the round loop on `workers` threads and return per-cluster parts.
/// Unlike the by-rank path this *always* finishes every shard — the store
/// logs must survive the error path for [`merge_cluster_stores`].
fn run_cluster_shards(
    cluster_systems: &mut [GpuSystem],
    launch: &GridLaunch,
    opts: &RunOptions,
    workers: usize,
) -> (Option<SimError>, Vec<ShardParts>) {
    let nclusters = cluster_systems.len();
    let num_sms = cluster_systems[0].arch.num_sms;
    let instr_limit = cluster_systems[0].instr_limit;
    let engines: Vec<Mutex<Engine>> = cluster_systems
        .iter_mut()
        .enumerate()
        .map(|(c, s)| {
            // No `with_check`: checked launches are cluster-ineligible.
            let mut e = Engine::new(s, launch)
                .with_profile(opts.wants_profile())
                .with_faults(opts.fault_plan())
                .with_watchdog(opts.watchdog_budget())
                .sharded_by_cluster(c as u32, nclusters as u32);
            if let Some(cap) = opts.trace_cap() {
                e = e.with_trace(cap);
            }
            Mutex::new(e)
        })
        .collect();

    let w = workers.min(nclusters).max(1);
    let barrier = Barrier::new(w);
    let control = Mutex::new(Control::Done);
    let errors: Mutex<Vec<(Ps, usize, SimError)>> = Mutex::new(Vec::new());
    let final_err: Mutex<Option<SimError>> = Mutex::new(None);
    let watchdog_budget = opts.watchdog_budget();
    let grid_dim = launch.grid_dim;

    std::thread::scope(|scope| {
        for i in 0..w {
            let engines = &engines;
            let barrier = &barrier;
            let control = &control;
            let errors = &errors;
            let final_err = &final_err;
            scope.spawn(move || {
                // Static ownership: cluster c belongs to worker c % w, so the
                // schedule — and with it every artifact — is independent of
                // thread timing.
                let my: Vec<usize> = (i..nclusters).step_by(w).collect();
                for &c in &my {
                    engines[c].lock().unwrap().setup_shard();
                }
                let mut dead = vec![false; my.len()];
                // Coordinator state (worker 0 only): pooled grid-barrier
                // arrivals and the device-level L2 atomic-unit replica they
                // replay on. The replica persists across barrier epochs —
                // it *is* the device's one L2 atomic unit.
                let mut pool: Vec<(Ps, Ps, u32, bool)> = Vec::new();
                let mut l2 = Pipeline::new();
                loop {
                    barrier.wait();
                    if i == 0 {
                        *control.lock().unwrap() = coordinate_clusters(
                            engines,
                            errors,
                            final_err,
                            &mut pool,
                            &mut l2,
                            watchdog_budget,
                            instr_limit,
                            grid_dim,
                            num_sms,
                        );
                    }
                    barrier.wait();
                    let c = *control.lock().unwrap();
                    match c {
                        Control::Run(horizon) => {
                            for (k, &r) in my.iter().enumerate() {
                                if dead[k] {
                                    continue;
                                }
                                let mut eng = engines[r].lock().unwrap();
                                if let Err(e) = eng.run_window(horizon) {
                                    dead[k] = true;
                                    let at = eng.now_ps();
                                    errors.lock().unwrap().push((at, r, e));
                                }
                            }
                        }
                        Control::Done | Control::Fail => break,
                    }
                }
            });
        }
    });

    let err = final_err.into_inner().unwrap();
    let parts = engines
        .into_iter()
        .map(|m| m.into_inner().unwrap().finish_shard())
        .collect();
    (err, parts)
}

/// One cluster-mode round boundary: resolve cross-cluster effects and pick
/// the next action. Runs with every other worker parked at the barrier.
#[allow(clippy::too_many_arguments)]
fn coordinate_clusters(
    engines: &[Mutex<Engine>],
    errors: &Mutex<Vec<(Ps, usize, SimError)>>,
    final_err: &Mutex<Option<SimError>>,
    pool: &mut Vec<(Ps, Ps, u32, bool)>,
    l2: &mut Pipeline,
    watchdog_budget: Option<Ps>,
    instr_limit: u64,
    grid_dim: u32,
    num_sms: u32,
) -> Control {
    // 1. A cluster error ends the run; surface the earliest one by
    //    (simulated time, cluster) — the event the single-queue engine would
    //    have hit first — so the error is independent of worker count.
    {
        let mut errs = errors.lock().unwrap();
        if !errs.is_empty() {
            errs.sort_by_key(|e| (e.0, e.1));
            let (_, _, e) = errs.remove(0);
            *final_err.lock().unwrap() = Some(e);
            return Control::Fail;
        }
    }
    let mut engs: Vec<_> = engines.iter().map(|m| m.lock().unwrap()).collect();

    // 2. Grid / multi-grid rendezvous: drain every cluster's arrival outbox.
    //    A release only happens once all `grid_dim` blocks arrive, and no
    //    block can re-arrive before its release, so the pool never mixes
    //    barrier epochs. Once complete, replay the arrival atomics on the
    //    device-level L2 replica in (firing time, block) order — the order
    //    the single-queue engine's event loop reaches them. Firing time
    //    (when the block's last warp hits the barrier), not convergence
    //    time: the per-SM barrier unit pushes `local` past the firing time
    //    by a congestion-dependent amount, so the two orders disagree under
    //    load, and the L2 pipeline + spinning counts are sequenced by the
    //    former. Releases are injected *before* computing the next horizon,
    //    so the release events bound `m` themselves.
    let nclusters = engs.len() as u32;
    for e in engs.iter_mut() {
        pool.extend(e.take_grid_arrivals());
    }
    if pool.len() == grid_dim as usize {
        pool.sort_unstable_by_key(|&(fire, _, gb, _)| (fire, gb));
        // The barrier kind is uniform across one epoch's arrivals (a mixed
        // Grid/MultiGrid wait would deadlock long before this point).
        let mgrid = pool[pool.len() - 1].3;
        let mut wakes: Vec<(u32, Ps)> = Vec::with_capacity(pool.len());
        let mut local_done = Ps::ZERO;
        for (k, &(_, local, gb, _)) in pool.iter().enumerate() {
            let done = engs[0].grid_arrival_issue(l2, local, k as u64);
            local_done = local_done.max(done);
            wakes.push((gb, done));
        }
        // A single-device multi-grid barrier degenerates to the master
        // exchange with one rank; a grid barrier releases at the last
        // arrival atomic's completion.
        let release_flag = if mgrid {
            engs[0].mgrid_release_times(&[local_done])[0]
        } else {
            local_done
        };
        for (c, e) in engs.iter_mut().enumerate() {
            let own: Vec<(u32, Ps)> = wakes
                .iter()
                .copied()
                .filter(|&(gb, _)| (gb % num_sms) % nclusters == c as u32)
                .collect();
            // Every cluster gets the injection (it syncs racecheck state and
            // lets the SM-0 cluster emit the one release epoch) even when it
            // owns no waiting blocks.
            e.inject_grid_release(release_flag, &own, mgrid);
        }
        pool.clear();
    }

    // 3. Global instruction budget (each cluster also trips a local backstop
    //    mid-round; the error text is identical either way).
    if engs.iter().map(|e| e.instrs()).sum::<u64>() > instr_limit {
        *final_err.lock().unwrap() = Some(engs[0].instr_limit_error());
        return Control::Fail;
    }

    // 4. Global minimum next-event time.
    let Some(m) = engs.iter().filter_map(|e| e.next_event_time()).min() else {
        // Every queue drained: completion, or a launch-wide deadlock.
        let mut blocked: Vec<(u32, u32, u32, String)> =
            engs.iter().flat_map(|e| e.blocked_descriptors()).collect();
        if blocked.is_empty() {
            return Control::Done;
        }
        blocked.sort_unstable();
        let at = engs.iter().map(|e| e.now_ps()).max().unwrap_or(Ps::ZERO);
        *final_err.lock().unwrap() = Some(SimError::Deadlock {
            at,
            blocked: blocked.into_iter().map(|(_, _, _, s)| s).collect(),
            faults: engs[0].fault_fingerprint(),
        });
        return Control::Fail;
    };

    // 5. Boundary watchdog: same predicate the single-queue engine applies
    //    per event, evaluated against *global* progress.
    if let Some(budget) = watchdog_budget {
        let last = engs
            .iter()
            .map(|e| e.last_progress_ps())
            .max()
            .unwrap_or(Ps::ZERO);
        if m.saturating_sub(last) > budget {
            let mut stuck: Vec<StuckWarp> = engs.iter().flat_map(|e| e.stuck_warps()).collect();
            stuck.sort_unstable();
            *final_err.lock().unwrap() = Some(SimError::Watchdog {
                at: m,
                last_progress: last,
                stuck,
                faults: engs[0].fault_fingerprint(),
            });
            return Control::Fail;
        }
    }

    // 6. Safe horizon. The only cross-cluster channel an eligible kernel has
    //    is the grid rendezvous above, and it is quiescent: a release is
    //    injected only at a boundary after *every* block has parked, and an
    //    arriving block parks — nothing it does past its arrival can reach
    //    another cluster. So with no watchdog armed each round may drain all
    //    the way to the next barrier epoch (unbounded horizon): rounds scale
    //    with barrier epochs, not simulated picoseconds. An armed watchdog
    //    needs its boundary progress check to run at least once per budget,
    //    so it keeps lookahead-bounded rounds (the intra-device sync floor —
    //    see METHODOLOGY §16).
    Control::Run(if watchdog_budget.is_some() {
        m + engs[0].cluster_lookahead()
    } else {
        Ps::MAX
    })
}

/// Replay every cluster's logged stores onto the caller's real buffers.
/// Stable sort of the cluster-major concatenation = ordered by (time,
/// cluster) with per-cluster program order preserved at full ties — the
/// single-queue engine's own store order for cluster-eligible launches.
/// Runs on the error path too, so the system reflects everything that
/// executed before the failure.
fn merge_cluster_stores(sys: &mut GpuSystem, parts: &mut [ShardParts]) {
    // Each cluster appends stores in event-processing order, which is *near*
    // issue-time order (pipeline queueing can stamp a later-processed store
    // with an earlier issue time). A stable per-log sort — adaptive, so
    // almost-sorted logs cost ~O(n) — followed by a k-way merge taking the
    // lowest cluster on ties is exactly the stable time-sort of the
    // cluster-major concatenation, without materializing or sorting the
    // whole thing (the logs hold one entry per stored word — hundreds of
    // thousands for big grids).
    for p in parts.iter_mut() {
        p.store_log.sort_by_key(|&(at, _, _, _)| at);
    }
    let logs: Vec<&[(Ps, usize, u64, u64)]> =
        parts.iter().map(|p| p.store_log.as_slice()).collect();
    let mut pos = vec![0usize; logs.len()];
    loop {
        let mut best: Option<usize> = None;
        for (c, log) in logs.iter().enumerate() {
            if pos[c] < log.len() && best.is_none_or(|b| log[pos[c]].0 < logs[b][pos[b]].0) {
                best = Some(c);
            }
        }
        let Some(b) = best else { break };
        let (_, buf, i, v) = logs[b][pos[b]];
        pos[b] += 1;
        sys.bufs[buf]
            .store(i, v)
            .expect("cluster store was bounds-checked in-engine");
    }
    for p in parts.iter_mut() {
        p.store_log.clear();
    }
}

/// Merge per-cluster parts into launch-wide artifacts. Unlike the by-rank
/// merge, trace ties are ordered by (block, warp) — the single-queue engine's
/// insertion order for the symmetric launches cluster sharding accepts — and
/// the per-SM profile rows concatenate in SM order because cluster `c` *is*
/// SM `c`.
fn merge_cluster_artifacts(
    ps_per_cycle: f64,
    launch: &GridLaunch,
    opts: &RunOptions,
    parts: Vec<ShardParts>,
) -> (
    ExecReport,
    Vec<TraceEvent>,
    HazardReport,
    Option<ProfileReport>,
) {
    let end_time = parts.iter().map(|p| p.end_time).max().unwrap_or(Ps::ZERO);
    let report = ExecReport {
        duration: end_time,
        device_durations: vec![end_time],
        blocks_run: launch.grid_dim as u64,
        warps_run: parts.iter().map(|p| p.warps_run).sum(),
        instrs_executed: parts.iter().map(|p| p.instrs_executed).sum(),
    };
    let mut trace = Vec::new();
    let mut hazards = HazardReport::default();
    let mut sm_rows = Vec::new();
    let mut epochs = Vec::new();
    let mut epochs_dropped = 0u64;
    for p in parts {
        trace.extend(p.trace);
        hazards.records.extend(p.hazards.records);
        hazards.dropped += p.hazards.dropped;
        hazards.global.extend(p.hazards.global);
        hazards.global_dropped += p.hazards.global_dropped;
        sm_rows.extend(p.sm_rows);
        epochs.extend(p.epochs);
        epochs_dropped += p.epochs_dropped;
    }
    trace.sort_by_key(|e| (e.at, e.rank, e.block, e.warp_in_block));
    if let Some(cap) = opts.trace_cap() {
        trace.truncate(cap);
    }
    // Hazards are always empty here (checked runs are cluster-ineligible)
    // but keep the canonical order for safety.
    hazards.records.sort_by_key(|r| (r.rank, r.block));
    // Each cluster contributes its SMs' rows in ascending SM order, but the
    // clusters interleave SM indices (SM s → cluster s % nclusters), so the
    // concatenation needs one more sort to restore device SM order.
    sm_rows.sort_by_key(|r| (r.rank, r.sm));
    epochs.sort_by_key(|e| (e.at_ps, e.rank));
    if epochs.len() > EPOCH_CAP {
        epochs_dropped += (epochs.len() - EPOCH_CAP) as u64;
        epochs.truncate(EPOCH_CAP);
    }
    let profile = opts.wants_profile().then(|| {
        ProfileReport::from_parts(
            ps_per_cycle,
            launch.kernel.name.clone(),
            sm_rows,
            epochs,
            epochs_dropped,
        )
    });
    (report, trace, hazards, profile)
}
