//! Intra-launch sharding: one discrete-event shard per device rank, run by a
//! pool of worker threads under conservative time-window synchronization.
//!
//! # Protocol
//!
//! Each shard owns one rank's warps, blocks, and a private [`sim_core::EventQueue`].
//! Execution proceeds in rounds: a coordinator (worker 0) computes the global
//! minimum next-event time `m` and hands every shard the horizon
//! `m + lookahead`, where `lookahead` is the minimum inter-device flag latency
//! of the (possibly fault-degraded) topology. Shards then drain their local
//! queues strictly below the horizon in parallel and meet back at a barrier.
//!
//! The only cross-shard interaction is the multi-grid barrier, and it is safe
//! by construction: a rank reports its arrival at a round boundary, and the
//! release times the coordinator computes from the full arrival vector are at
//! least `2 × lookahead` past the latest arrival (one flag hop to the master
//! device and one back, each no shorter than the minimum flag latency). The
//! latest arrival is itself no earlier than the round's base time `m`, so
//! every release lands at or beyond the *next* round's horizon — no shard can
//! run past a release it has not yet been handed. Cross-device *memory*
//! traffic has no such latency floor, so the engine rejects it under sharding
//! (see `shard_guard` in `engine.rs`); all in-repo multi-device workloads are
//! device-private and unaffected.
//!
//! # Determinism
//!
//! Logical shards are fixed per rank and worker threads own shards by static
//! round-robin, so the per-shard event streams — and every merged artifact —
//! are a pure function of the launch, byte-identical at any `--shards` value
//! and identical to `--shards 1`. Merged artifacts order per-rank parts
//! rank-major (matching the single-queue engine's block-major conventions)
//! and time-sort trace events and barrier epochs.

use crate::engine::{Engine, HazardReport, ShardParts, TraceEvent};
use crate::mem::{BufData, Buffer};
use crate::profile::{ProfileReport, EPOCH_CAP};
use crate::system::{ExecReport, GpuSystem, GridLaunch, RunOptions};
use sim_core::{Ps, SimError, SimResult, StuckWarp};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Process-wide default worker count for [`crate::system::ShardPolicy::Auto`],
/// set by the CLI's `--shards` flag. `0` (the initial value) selects the
/// classic single-queue engine.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(0);

/// Set the process-wide default shard worker count used when a launch's
/// [`crate::RunOptions`] leaves sharding on `Auto`. `0` restores the
/// single-queue default.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n, Ordering::Relaxed);
}

/// The process-wide default shard worker count (see [`set_default_shards`]).
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// What the coordinator decided at a round boundary.
#[derive(Clone, Copy)]
enum Control {
    /// Run one more round up to this horizon (exclusive).
    Run(Ps),
    /// Every queue drained with nothing blocked: the launch completed.
    Done,
    /// The run failed; the first error (by shard index) is in `final_err`.
    Fail,
}

/// Run `launch` sharded by rank on up to `workers` threads. Caller guarantees
/// `workers > 0` and a multi-device launch. Buffers are partitioned to their
/// owning shard for the run and merged back afterwards on every path, so
/// `sys` is whole again even when the run errors.
pub(crate) fn execute_sharded(
    sys: &mut GpuSystem,
    launch: &GridLaunch,
    opts: &RunOptions,
    check: bool,
    workers: usize,
) -> SimResult<(
    ExecReport,
    Vec<TraceEvent>,
    HazardReport,
    Option<ProfileReport>,
)> {
    debug_assert!(workers > 0 && launch.devices.len() > 1);
    let ps_per_cycle = sys.arch.clock().ps_per_cycle();
    let (owners, mut orphans, mut shard_systems) = partition_buffers(sys, launch);
    let result = run_shards(&mut shard_systems, launch, opts, check, workers);
    merge_buffers_back(sys, &owners, &mut orphans, &mut shard_systems);
    let parts = result?;
    Ok(merge_artifacts(ps_per_cycle, launch, opts, parts))
}

fn placeholder(device: usize) -> Buffer {
    Buffer {
        device,
        data: BufData::Dense(Vec::new()),
    }
}

/// Move every buffer into the system of the shard whose device owns it;
/// every other shard gets an empty placeholder at the same index so `BufId`s
/// stay valid everywhere (touching a placeholder is impossible: the engine's
/// `shard_guard` rejects cross-device access before any load/store).
/// Buffers on devices outside the launch ride along in `orphans`. Returns
/// `(owner shard per buffer, orphans, shard systems)`.
#[allow(clippy::type_complexity)]
fn partition_buffers(
    sys: &mut GpuSystem,
    launch: &GridLaunch,
) -> (Vec<Option<usize>>, Vec<Option<Buffer>>, Vec<GpuSystem>) {
    let bufs = std::mem::take(&mut sys.bufs);
    let nranks = launch.devices.len();
    let mut owners: Vec<Option<usize>> = Vec::with_capacity(bufs.len());
    let mut orphans: Vec<Option<Buffer>> = Vec::with_capacity(bufs.len());
    let mut shard_systems: Vec<GpuSystem> = (0..nranks)
        .map(|_| GpuSystem {
            arch: sys.arch.clone(),
            topology: sys.topology.clone(),
            bufs: Vec::with_capacity(bufs.len()),
            instr_limit: sys.instr_limit,
        })
        .collect();
    for b in bufs {
        let device = b.device;
        let owner = launch.devices.iter().position(|&d| d == device);
        owners.push(owner);
        for (r, s) in shard_systems.iter_mut().enumerate() {
            if owner != Some(r) {
                s.bufs.push(placeholder(device));
            }
        }
        match owner {
            Some(r) => {
                shard_systems[r].bufs.push(b);
                orphans.push(None);
            }
            None => orphans.push(Some(b)),
        }
    }
    (owners, orphans, shard_systems)
}

/// Reassemble `sys.bufs` from the shard systems and orphans, preserving ids.
fn merge_buffers_back(
    sys: &mut GpuSystem,
    owners: &[Option<usize>],
    orphans: &mut [Option<Buffer>],
    shard_systems: &mut [GpuSystem],
) {
    sys.bufs = owners
        .iter()
        .enumerate()
        .map(|(i, owner)| match owner {
            Some(r) => {
                let slot = &mut shard_systems[*r].bufs[i];
                let device = slot.device;
                std::mem::replace(slot, placeholder(device))
            }
            None => orphans[i].take().expect("unowned buffer kept aside"),
        })
        .collect();
}

/// Drive the round loop on `workers` threads and return per-rank parts.
fn run_shards(
    shard_systems: &mut [GpuSystem],
    launch: &GridLaunch,
    opts: &RunOptions,
    check: bool,
    workers: usize,
) -> SimResult<Vec<ShardParts>> {
    let nranks = shard_systems.len();
    let instr_limit = shard_systems[0].instr_limit;
    let engines: Vec<Mutex<Engine>> = shard_systems
        .iter_mut()
        .enumerate()
        .map(|(r, s)| {
            let mut e = Engine::new(s, launch)
                .with_check(check)
                .with_profile(opts.wants_profile())
                .with_faults(opts.fault_plan())
                .with_watchdog(opts.watchdog_budget())
                .sharded(r);
            if let Some(cap) = opts.trace_cap() {
                e = e.with_trace(cap);
            }
            Mutex::new(e)
        })
        .collect();

    let w = workers.min(nranks).max(1);
    let barrier = Barrier::new(w);
    let control = Mutex::new(Control::Done);
    let errors: Mutex<Vec<(usize, SimError)>> = Mutex::new(Vec::new());
    let final_err: Mutex<Option<SimError>> = Mutex::new(None);
    let watchdog_budget = opts.watchdog_budget();

    std::thread::scope(|scope| {
        for i in 0..w {
            let engines = &engines;
            let barrier = &barrier;
            let control = &control;
            let errors = &errors;
            let final_err = &final_err;
            scope.spawn(move || {
                // Static ownership: shard r belongs to worker r % w, so the
                // schedule — and with it every artifact — is independent of
                // thread timing.
                let my: Vec<usize> = (i..nranks).step_by(w).collect();
                for &r in &my {
                    engines[r].lock().unwrap().setup_shard();
                }
                let mut dead = vec![false; my.len()];
                // Coordinator state (worker 0 only): pending multi-grid
                // arrivals, one slot per rank.
                let mut arrivals: Vec<Option<Ps>> = vec![None; nranks];
                loop {
                    barrier.wait();
                    if i == 0 {
                        *control.lock().unwrap() = coordinate(
                            engines,
                            errors,
                            final_err,
                            &mut arrivals,
                            watchdog_budget,
                            instr_limit,
                        );
                    }
                    barrier.wait();
                    let c = *control.lock().unwrap();
                    match c {
                        Control::Run(horizon) => {
                            for (k, &r) in my.iter().enumerate() {
                                if dead[k] {
                                    continue;
                                }
                                if let Err(e) = engines[r].lock().unwrap().run_window(horizon) {
                                    dead[k] = true;
                                    errors.lock().unwrap().push((r, e));
                                }
                            }
                        }
                        Control::Done | Control::Fail => break,
                    }
                }
            });
        }
    });

    if let Some(e) = final_err.into_inner().unwrap() {
        return Err(e);
    }
    Ok(engines
        .into_iter()
        .map(|m| m.into_inner().unwrap().finish_shard())
        .collect())
}

/// One round boundary: resolve cross-shard effects and pick the next action.
/// Runs with every other worker parked at the barrier, so the engine locks
/// are uncontended.
fn coordinate(
    engines: &[Mutex<Engine>],
    errors: &Mutex<Vec<(usize, SimError)>>,
    final_err: &Mutex<Option<SimError>>,
    arrivals: &mut [Option<Ps>],
    watchdog_budget: Option<Ps>,
    instr_limit: u64,
) -> Control {
    // 1. A shard error ends the run; report the lowest-rank one so the
    //    surfaced error is independent of worker count.
    {
        let mut errs = errors.lock().unwrap();
        if !errs.is_empty() {
            errs.sort_by_key(|&(r, _)| r);
            let (_, e) = errs.remove(0);
            *final_err.lock().unwrap() = Some(e);
            return Control::Fail;
        }
    }
    let mut engs: Vec<_> = engines.iter().map(|m| m.lock().unwrap()).collect();

    // 2. Multi-grid rendezvous: collect fresh arrivals; once every rank has
    //    arrived, resolve release times with the same master-exchange model
    //    the single-queue engine uses and inject them *before* computing the
    //    next horizon, so the release events bound `m` themselves.
    for (slot, e) in arrivals.iter_mut().zip(engs.iter_mut()) {
        if let Some(at) = e.take_mgrid_arrival() {
            debug_assert!(slot.is_none(), "mgrid phases cannot overlap");
            *slot = Some(at);
        }
    }
    if arrivals.iter().all(|a| a.is_some()) {
        let times: Vec<Ps> = arrivals.iter().map(|a| a.unwrap()).collect();
        let releases = engs[0].mgrid_release_times(&times);
        for (e, &rel) in engs.iter_mut().zip(&releases) {
            e.inject_mgrid_release(rel);
        }
        arrivals.iter_mut().for_each(|a| *a = None);
    }

    // 3. Global instruction budget (each shard also trips a local backstop
    //    mid-round; the error text is identical either way).
    if engs.iter().map(|e| e.instrs()).sum::<u64>() > instr_limit {
        *final_err.lock().unwrap() = Some(engs[0].instr_limit_error());
        return Control::Fail;
    }

    // 4. Global minimum next-event time.
    let Some(m) = engs.iter().filter_map(|e| e.next_event_time()).min() else {
        // Every queue drained: completion, or a launch-wide deadlock.
        let mut blocked: Vec<(u32, u32, u32, String)> =
            engs.iter().flat_map(|e| e.blocked_descriptors()).collect();
        if blocked.is_empty() {
            return Control::Done;
        }
        blocked.sort_unstable();
        let at = engs.iter().map(|e| e.now_ps()).max().unwrap_or(Ps::ZERO);
        *final_err.lock().unwrap() = Some(SimError::Deadlock {
            at,
            blocked: blocked.into_iter().map(|(_, _, _, s)| s).collect(),
        });
        return Control::Fail;
    };

    // 5. Boundary watchdog: same predicate the single-queue engine applies
    //    per event (`now - last_progress > budget` at the next event time),
    //    evaluated against *global* progress.
    if let Some(budget) = watchdog_budget {
        let last = engs
            .iter()
            .map(|e| e.last_progress_ps())
            .max()
            .unwrap_or(Ps::ZERO);
        if m.saturating_sub(last) > budget {
            let mut stuck: Vec<StuckWarp> = engs.iter().flat_map(|e| e.stuck_warps()).collect();
            stuck.sort_unstable();
            *final_err.lock().unwrap() = Some(SimError::Watchdog {
                at: m,
                last_progress: last,
                stuck,
            });
            return Control::Fail;
        }
    }

    // 6. Safe horizon: nothing cross-shard can land below m + lookahead.
    Control::Run(m + engs[0].shard_lookahead())
}

/// Merge per-rank parts into launch-wide artifacts, rank-major like the
/// single-queue engine's block-major iteration, with time-sorted traces and
/// epochs.
fn merge_artifacts(
    ps_per_cycle: f64,
    launch: &GridLaunch,
    opts: &RunOptions,
    parts: Vec<ShardParts>,
) -> (
    ExecReport,
    Vec<TraceEvent>,
    HazardReport,
    Option<ProfileReport>,
) {
    let nranks = parts.len();
    let device_durations: Vec<Ps> = parts.iter().map(|p| p.end_time).collect();
    let report = ExecReport {
        duration: device_durations.iter().copied().max().unwrap_or(Ps::ZERO),
        device_durations,
        blocks_run: launch.grid_dim as u64 * nranks as u64,
        warps_run: parts.iter().map(|p| p.warps_run).sum(),
        instrs_executed: parts.iter().map(|p| p.instrs_executed).sum(),
    };
    let mut trace = Vec::new();
    let mut hazards = HazardReport::default();
    let mut sm_rows = Vec::new();
    let mut epochs = Vec::new();
    let mut epochs_dropped = 0u64;
    for p in parts {
        trace.extend(p.trace);
        hazards.records.extend(p.hazards.records);
        hazards.dropped += p.hazards.dropped;
        hazards.global.extend(p.hazards.global);
        hazards.global_dropped += p.hazards.global_dropped;
        sm_rows.extend(p.sm_rows);
        epochs.extend(p.epochs);
        epochs_dropped += p.epochs_dropped;
    }
    // Stable sort of the rank-major concatenation = ordered by (time, rank)
    // with per-shard execution order preserved at full ties.
    trace.sort_by_key(|e| e.at);
    if let Some(cap) = opts.trace_cap() {
        trace.truncate(cap);
    }
    epochs.sort_by_key(|e| (e.at_ps, e.rank));
    if epochs.len() > EPOCH_CAP {
        epochs_dropped += (epochs.len() - EPOCH_CAP) as u64;
        epochs.truncate(EPOCH_CAP);
    }
    let profile = opts.wants_profile().then(|| {
        ProfileReport::from_parts(
            ps_per_cycle,
            launch.kernel.name.clone(),
            sm_rows,
            epochs,
            epochs_dropped,
        )
    });
    (report, trace, hazards, profile)
}
