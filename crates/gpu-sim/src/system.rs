//! The simulated GPU system: devices, memory, and kernel launches.

use crate::engine::{Engine, HazardReport, TraceEvent};
use crate::isa::Kernel;
use crate::mem::{BufData, BufId, Buffer};
use crate::profile::ProfileReport;
use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use serde::{Deserialize, Serialize};
use sim_core::{Ps, SimError, SimResult};
use std::sync::Arc;

/// Which launch API a kernel was started with (paper §IV). Grid sync is only
/// legal in cooperative launches; multi-grid sync only in multi-device
/// cooperative launches — using them elsewhere is an invalid launch, and
/// cooperative grids must fit co-resident or they are rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LaunchKind {
    /// `kernel<<<...>>>` — the classic stream launch.
    Traditional,
    /// `cudaLaunchCooperativeKernel` — enables `grid.sync()`.
    Cooperative,
    /// `cudaLaunchCooperativeKernelMultiDevice` — enables multi-grid sync.
    CooperativeMultiDevice,
}

/// A device-side grid launch description.
#[derive(Debug, Clone)]
pub struct GridLaunch {
    pub kernel: Kernel,
    /// Blocks per participating device.
    pub grid_dim: u32,
    /// Threads per block.
    pub block_dim: u32,
    pub kind: LaunchKind,
    /// Participating device ids (exactly one unless multi-device).
    pub devices: Vec<usize>,
    /// Kernel parameters, one vector per participating device (same order).
    pub params: Vec<Vec<u64>>,
    /// Opt-in synchronization checking: validation runs the static
    /// [`crate::verify`] lint (error-severity findings reject the launch)
    /// and the engine enables the shared-memory racecheck shadow state.
    /// Checking never perturbs simulated timing.
    pub checked: bool,
}

impl GridLaunch {
    /// Single-device launch with the same params every launch kind.
    pub fn single(kernel: Kernel, grid_dim: u32, block_dim: u32, params: Vec<u64>) -> GridLaunch {
        GridLaunch {
            kernel,
            grid_dim,
            block_dim,
            kind: LaunchKind::Traditional,
            devices: vec![0],
            params: vec![params],
            checked: false,
        }
    }

    pub fn cooperative(mut self) -> GridLaunch {
        self.kind = LaunchKind::Cooperative;
        self
    }

    pub fn on_device(mut self, device: usize) -> GridLaunch {
        self.devices = vec![device];
        self
    }

    /// Enable synchronization checking for this launch (static lint at
    /// validation + dynamic racecheck during execution).
    pub fn checked(mut self) -> GridLaunch {
        self.checked = true;
        self
    }

    /// Multi-device cooperative launch over `devices`, with per-device params.
    pub fn multi(
        kernel: Kernel,
        grid_dim: u32,
        block_dim: u32,
        devices: Vec<usize>,
        params: Vec<Vec<u64>>,
    ) -> GridLaunch {
        assert_eq!(devices.len(), params.len(), "one param set per device");
        GridLaunch {
            kernel,
            grid_dim,
            block_dim,
            kind: LaunchKind::CooperativeMultiDevice,
            devices,
            params,
            checked: false,
        }
    }
}

/// Execution statistics of one kernel run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecReport {
    /// Wall time of the slowest participating device.
    pub duration: Ps,
    /// Per participating device (launch order), time until its grid drained.
    pub device_durations: Vec<Ps>,
    pub blocks_run: u64,
    pub warps_run: u64,
    pub instrs_executed: u64,
}

impl ExecReport {
    /// Duration in cycles of the given device clock.
    pub fn cycles(&self, arch: &GpuArch) -> u64 {
        arch.clock().to_cycles_u64(self.duration)
    }
}

/// How a launch's discrete-event execution is parallelized (see
/// [`crate::shard`] for the protocol). Sharding is an *execution strategy*,
/// not an instrument: every artifact a sharded run produces is byte-identical
/// at any worker count. The decomposition axis follows the launch shape —
/// multi-device launches shard by device rank, single-device launches by SM
/// cluster — so [`ShardPolicy::ByRank`] and [`ShardPolicy::BySmCluster`] are
/// worker-count *hints* whose axis is corrected to fit the launch. Launches
/// the cluster protocol cannot reproduce exactly (see
/// `crate::shard::single_device_fallback_reason`) fall back to the single
/// queue and report why through
/// [`crate::shard::set_shard_fallback_hook`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Use the process-wide default ([`crate::shard::set_default_shards`],
    /// wired to the CLI's `--shards`); `0` means the single-queue engine.
    #[default]
    Auto,
    /// Force the classic single event queue.
    SingleQueue,
    /// One shard per device rank of a multi-device launch, driven by up to
    /// `workers` OS threads under conservative time-window synchronization.
    ByRank { workers: usize },
    /// One shard per SM cluster of a single-device launch, driven by up to
    /// `workers` OS threads — the intra-device decomposition
    /// (`GpuArch::sm_cluster_count` clusters, window-bounded cross-shard
    /// memory).
    BySmCluster { workers: usize },
}

/// The execution strategy [`GpuSystem::decide_sharding`] resolved for one
/// launch: the policy hint corrected to the launch's shape, with every
/// fallback reported through the shard fallback hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ShardMode {
    SingleQueue,
    ByRank { workers: usize },
    BySmCluster { workers: usize },
}

/// What to instrument during a run — the one knob set of the unified
/// [`GpuSystem::execute`] API. Compose with the builder methods:
///
/// ```
/// use gpu_sim::RunOptions;
/// let opts = RunOptions::new().check().trace(10_000).profile();
/// assert!(opts.wants_check() && opts.wants_profile());
/// assert_eq!(opts.trace_cap(), Some(10_000));
/// ```
///
/// None of the instruments perturb simulated timing: a checked, traced, and
/// profiled run reports the same `ExecReport` as a bare one. Fault injection
/// ([`RunOptions::faults`]) is the deliberate exception — it exists to
/// perturb timing — but a zero plan and an unarmed watchdog are guaranteed
/// no-ops.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    check: bool,
    trace: Option<usize>,
    profile: bool,
    faults: Option<crate::fault::FaultPlan>,
    watchdog: Option<Ps>,
    shards: ShardPolicy,
    recovery: Option<crate::recover::RecoveryPolicy>,
}

impl RunOptions {
    /// No instrumentation: just validate, execute, and time the launch.
    pub const fn new() -> RunOptions {
        RunOptions {
            check: false,
            trace: None,
            profile: false,
            faults: None,
            watchdog: None,
            shards: ShardPolicy::Auto,
            recovery: None,
        }
    }

    /// Arm synchronization checking: the static [`crate::verify`] lint runs
    /// at validation (error-severity findings reject the launch) and the
    /// dynamic shared-memory racecheck records hazards into
    /// [`RunArtifacts::hazards`].
    pub const fn check(mut self) -> RunOptions {
        self.check = true;
        self
    }

    /// Record up to `max_events` executed instructions into
    /// [`RunArtifacts::trace`].
    pub const fn trace(mut self, max_events: usize) -> RunOptions {
        self.trace = Some(max_events);
        self
    }

    /// Collect syncprof stall attribution and per-SM counters into
    /// [`RunArtifacts::profile`].
    pub const fn profile(mut self) -> RunOptions {
        self.profile = true;
        self
    }

    /// Arm deterministic fault injection with `plan` (see
    /// [`crate::fault::FaultPlan`]). A [`FaultPlan::is_zero`] plan perturbs
    /// nothing — artifacts stay byte-identical to an unarmed run.
    ///
    /// [`FaultPlan::is_zero`]: crate::fault::FaultPlan::is_zero
    pub fn faults(mut self, plan: crate::fault::FaultPlan) -> RunOptions {
        self.faults = Some(plan);
        self
    }

    /// Arm the progress watchdog: if simulated time advances more than
    /// `budget` past the last forward progress (any warp moving beyond its
    /// furthest-reached PC), the run fails with
    /// [`SimError::Watchdog`] instead of spinning to the instruction limit.
    pub const fn watchdog(mut self, budget: Ps) -> RunOptions {
        self.watchdog = Some(budget);
        self
    }

    /// Select intra-launch sharding: `n` worker threads driving one
    /// discrete-event shard per device rank (multi-device launches) or per
    /// SM cluster (single-device launches) — the axis follows the launch
    /// shape. `n = 0` forces the single-queue engine; `n = 1` runs the
    /// sharded protocol on one thread — useful to test its determinism.
    /// Shorthand for the common [`ShardPolicy`] cases.
    pub const fn shards(mut self, n: usize) -> RunOptions {
        self.shards = if n == 0 {
            ShardPolicy::SingleQueue
        } else {
            ShardPolicy::ByRank { workers: n }
        };
        self
    }

    /// Set the full [`ShardPolicy`] (e.g. to restore `Auto`).
    pub const fn shard_policy(mut self, policy: ShardPolicy) -> RunOptions {
        self.shards = policy;
        self
    }

    /// Arm the fault recovery layer (see [`crate::recover`]): on a
    /// retryable [`SimError`] the launch is rolled back to a pre-attempt
    /// buffer checkpoint and relaunched under the policy's backoff and
    /// eviction rules, and [`RunArtifacts::recovery`] reports what happened.
    /// With no policy armed, execution takes exactly the historical path and
    /// every artifact is byte-identical to it.
    pub const fn recovery(mut self, policy: crate::recover::RecoveryPolicy) -> RunOptions {
        self.recovery = Some(policy);
        self
    }

    pub const fn sharding(&self) -> ShardPolicy {
        self.shards
    }

    pub const fn wants_check(&self) -> bool {
        self.check
    }

    pub fn fault_plan(&self) -> Option<&crate::fault::FaultPlan> {
        self.faults.as_ref()
    }

    pub const fn watchdog_budget(&self) -> Option<Ps> {
        self.watchdog
    }

    pub const fn trace_cap(&self) -> Option<usize> {
        self.trace
    }

    pub const fn wants_profile(&self) -> bool {
        self.profile
    }

    pub fn recovery_policy(&self) -> Option<&crate::recover::RecoveryPolicy> {
        self.recovery.as_ref()
    }

    /// The options one recovery attempt runs under: same instruments and
    /// sharding, the attempt's (possibly disarmed or rank-compacted) fault
    /// plan, and no recovery policy — the inner `execute` must not recurse
    /// into the recovery layer.
    pub(crate) fn for_recovery_attempt(
        &self,
        faults: Option<crate::fault::FaultPlan>,
    ) -> RunOptions {
        let mut opts = self.clone();
        opts.faults = faults;
        opts.recovery = None;
        opts
    }
}

/// Everything a run produced. `report` is always present; the optional
/// instruments are `Some` exactly when the corresponding [`RunOptions`]
/// switch (or the launch's own `checked` flag) was set.
#[derive(Debug, Clone)]
pub struct RunArtifacts {
    pub report: ExecReport,
    /// Dynamic racecheck findings (`Some` iff checking was armed; empty
    /// records mean the run was racecheck-clean).
    pub hazards: Option<HazardReport>,
    /// Recorded execution steps (`Some` iff tracing was requested).
    pub trace: Option<Vec<TraceEvent>>,
    /// Syncprof counters (`Some` iff profiling was requested).
    pub profile: Option<ProfileReport>,
    /// What the recovery layer did (`Some` iff a [`RunOptions::recovery`]
    /// policy was armed — even for a clean first attempt, so callers can
    /// tell "no recovery armed" from "armed but unneeded").
    pub recovery: Option<crate::recover::RecoveryReport>,
}

impl RunArtifacts {
    /// Whether no hazard evidence was collected: checking either wasn't
    /// armed, or was armed and found nothing.
    pub fn is_clean(&self) -> bool {
        self.hazards.as_ref().is_none_or(|h| h.is_clean())
    }
}

/// A node of simulated GPUs with its interconnect and all device memory.
///
/// ```
/// use gpu_sim::{GpuSystem, GridLaunch, RunOptions, kernels};
/// use gpu_arch::GpuArch;
///
/// let mut arch = GpuArch::v100();
/// arch.num_sms = 2;
/// let mut sys = GpuSystem::single(arch);
/// let launch = GridLaunch::single(kernels::null_kernel(), 4, 64, vec![]);
/// let report = sys.execute(&launch, &RunOptions::new()).unwrap().report;
/// assert_eq!(report.blocks_run, 4);
/// assert_eq!(report.warps_run, 8);
/// ```
#[derive(Debug, Clone)]
pub struct GpuSystem {
    /// Shared, immutable once constructed — sweep cells running on worker
    /// threads alias the same `GpuArch` instead of deep-cloning per cell.
    pub arch: Arc<GpuArch>,
    pub topology: Arc<NodeTopology>,
    pub(crate) bufs: Vec<Buffer>,
    /// Instruction budget per kernel before the engine declares the kernel
    /// non-terminating (spin loops that never observe their condition).
    pub instr_limit: u64,
}

impl GpuSystem {
    /// A node of `topology.num_gpus` identical GPUs. Accepts owned values or
    /// pre-shared `Arc`s, so sweep drivers can share one description across
    /// every cell.
    pub fn new(arch: impl Into<Arc<GpuArch>>, topology: impl Into<Arc<NodeTopology>>) -> GpuSystem {
        GpuSystem {
            arch: arch.into(),
            topology: topology.into(),
            bufs: Vec::new(),
            instr_limit: 200_000_000,
        }
    }

    /// Lower (or raise) the per-kernel instruction budget — useful to make
    /// spin-loop livelocks fail fast in tests.
    pub fn with_instr_limit(mut self, limit: u64) -> GpuSystem {
        self.instr_limit = limit;
        self
    }

    /// Convenience: a single-GPU system.
    pub fn single(arch: impl Into<Arc<GpuArch>>) -> GpuSystem {
        GpuSystem::new(arch, NodeTopology::single())
    }

    pub fn num_gpus(&self) -> usize {
        self.topology.num_gpus
    }

    /// Snapshot every buffer — the checkpoint the recovery layer takes
    /// before a launch's first attempt (see [`crate::mem::MemCheckpoint`]
    /// for the byte-exactness argument).
    pub fn checkpoint(&self) -> crate::mem::MemCheckpoint {
        crate::mem::MemCheckpoint {
            bufs: self.bufs.clone(),
        }
    }

    /// Restore every buffer from `ck`, byte-exactly. The checkpoint must
    /// come from this system's current allocation epoch (same buffer count);
    /// restoring someone else's checkpoint would silently remap ids.
    pub fn restore(&mut self, ck: &crate::mem::MemCheckpoint) {
        assert_eq!(
            self.bufs.len(),
            ck.num_buffers(),
            "checkpoint is from a different allocation epoch"
        );
        self.bufs.clone_from(&ck.bufs);
    }

    /// Drop all device memory, returning the system to its just-constructed
    /// state (allocation ids restart from 0).
    ///
    /// Sweep drivers reuse one `GpuSystem` per worker across cells instead
    /// of rebuilding device memory and peer channels per cell; calling
    /// `reset` between launches makes the reused system indistinguishable
    /// from a fresh one, so results stay byte-identical to unamortized runs.
    pub fn reset(&mut self) {
        self.bufs.clear();
    }

    fn check_device(&self, device: usize) {
        assert!(
            device < self.num_gpus(),
            "device {device} out of range ({} GPUs)",
            self.num_gpus()
        );
    }

    /// Allocate a zero-filled dense buffer of `words` 64-bit words.
    pub fn alloc(&mut self, device: usize, words: u64) -> BufId {
        self.check_device(device);
        self.bufs.push(Buffer {
            device,
            data: BufData::Dense(vec![0; words as usize]),
        });
        BufId(self.bufs.len() as u32 - 1)
    }

    /// Allocate a dense buffer holding the given f64 values.
    pub fn alloc_f64(&mut self, device: usize, vals: &[f64]) -> BufId {
        self.check_device(device);
        self.bufs.push(Buffer {
            device,
            data: BufData::Dense(vals.iter().map(|v| v.to_bits()).collect()),
        });
        BufId(self.bufs.len() as u32 - 1)
    }

    /// Allocate a synthetic buffer whose f64 value at index i is `a + b*i`.
    /// O(1) storage regardless of length — the workload generator for
    /// multi-gigabyte reduction inputs.
    pub fn alloc_linear(&mut self, device: usize, a: f64, b: f64, len: u64) -> BufId {
        self.check_device(device);
        self.bufs.push(Buffer {
            device,
            data: BufData::Linear { a, b, len },
        });
        BufId(self.bufs.len() as u32 - 1)
    }

    pub fn buffer(&self, id: BufId) -> &Buffer {
        &self.bufs[id.0 as usize]
    }

    pub fn buffer_mut(&mut self, id: BufId) -> &mut Buffer {
        &mut self.bufs[id.0 as usize]
    }

    /// Read back a buffer as f64 values.
    pub fn read_f64(&self, id: BufId) -> Vec<f64> {
        let b = self.buffer(id);
        (0..b.len())
            .map(|i| f64::from_bits(b.load(i).unwrap()))
            .collect()
    }

    /// Read back a buffer as raw words.
    pub fn read_u64(&self, id: BufId) -> Vec<u64> {
        let b = self.buffer(id);
        (0..b.len()).map(|i| b.load(i).unwrap()).collect()
    }

    /// Does any rank's param list name a buffer on a different device?
    /// Conservative (a scalar equal to a remote buffer's id counts), used
    /// only to keep the shard selection off launches that need the
    /// single-queue engine's cross-device data path.
    pub(crate) fn params_cross_devices(&self, launch: &GridLaunch) -> bool {
        launch.devices.iter().zip(&launch.params).any(|(&dev, ps)| {
            ps.iter().any(|&p| {
                usize::try_from(p)
                    .ok()
                    .and_then(|i| self.bufs.get(i))
                    .is_some_and(|b| b.device != dev)
            })
        })
    }

    /// Validate and execute a grid launch to completion — the single
    /// execution entry point. Host-side launch overheads are *not* included
    /// — they belong to the `cuda-rt` stream model.
    ///
    /// Instrumentation (checking, tracing, profiling) is selected by `opts`;
    /// see [`RunOptions`]. A launch built with [`GridLaunch::checked`] arms
    /// checking regardless of `opts`. Detected hazards always come back as
    /// *data* in [`RunArtifacts::hazards`] — `execute` only errors on
    /// invalid launches, faults, deadlock, or static-lint rejections.
    pub fn execute(&mut self, launch: &GridLaunch, opts: &RunOptions) -> SimResult<RunArtifacts> {
        if let Some(policy) = opts.recovery_policy() {
            // The recovery layer wraps this same entry point with attempt
            // options that carry no policy, so the recursion is one level.
            return crate::recover::execute_with_recovery(self, launch, opts, policy);
        }
        let check = opts.wants_check() || launch.checked;
        self.validate_with(launch, check)?;
        match self.decide_sharding(launch, opts, check) {
            ShardMode::SingleQueue => {}
            ShardMode::ByRank { workers } => {
                let (report, trace, hazards, profile) =
                    crate::shard::execute_sharded(self, launch, opts, check, workers)?;
                crate::stats::count_instrs(report.instrs_executed);
                return Ok(RunArtifacts {
                    report,
                    hazards: if check { Some(hazards) } else { None },
                    trace: if opts.trace_cap().is_some() {
                        Some(trace)
                    } else {
                        None
                    },
                    profile,
                    recovery: None,
                });
            }
            ShardMode::BySmCluster { workers } => {
                let (report, trace, hazards, profile) =
                    crate::shard::execute_cluster_sharded(self, launch, opts, check, workers)?;
                crate::stats::count_instrs(report.instrs_executed);
                return Ok(RunArtifacts {
                    report,
                    hazards: if check { Some(hazards) } else { None },
                    trace: if opts.trace_cap().is_some() {
                        Some(trace)
                    } else {
                        None
                    },
                    profile,
                    recovery: None,
                });
            }
        }
        let mut engine = Engine::new(self, launch)
            .with_check(check)
            .with_profile(opts.wants_profile())
            .with_faults(opts.fault_plan())
            .with_watchdog(opts.watchdog_budget());
        if let Some(cap) = opts.trace_cap() {
            engine = engine.with_trace(cap);
        }
        let (report, trace, hazards, profile) = engine.run_full()?;
        crate::stats::count_instrs(report.instrs_executed);
        Ok(RunArtifacts {
            report,
            hazards: if check { Some(hazards) } else { None },
            trace: if opts.trace_cap().is_some() {
                Some(trace)
            } else {
                None
            },
            profile,
            recovery: None,
        })
    }

    /// Resolve the launch's execution strategy from the policy hint and the
    /// launch shape. Multi-device launches shard by rank, single-device
    /// launches by SM cluster; every path that falls back to the single
    /// queue reports its reason once through
    /// [`crate::shard::set_shard_fallback_hook`].
    pub(crate) fn decide_sharding(
        &self,
        launch: &GridLaunch,
        opts: &RunOptions,
        check: bool,
    ) -> ShardMode {
        let (auto, workers) = match opts.sharding() {
            ShardPolicy::Auto => (true, crate::shard::default_shards()),
            ShardPolicy::SingleQueue => {
                crate::shard::note_shard_fallback("policy forces the single queue");
                return ShardMode::SingleQueue;
            }
            // The explicit variants are worker-count hints; the axis always
            // follows the launch shape.
            ShardPolicy::ByRank { workers } | ShardPolicy::BySmCluster { workers } => {
                (false, workers)
            }
        };
        if workers == 0 {
            crate::shard::note_shard_fallback("no shard workers configured (--shards 0)");
            return ShardMode::SingleQueue;
        }
        if launch.devices.len() > 1 {
            // The process-wide default must widen no semantics: a launch
            // whose params hand a rank another device's buffer (peer-access
            // reductions, P2P allreduce) needs the single-queue engine's
            // cross-device data path, so Auto quietly keeps it there. A
            // scalar param colliding with a remote buffer id only costs the
            // speedup, never correctness; computed cross-device accesses
            // that slip past the scan still hit the in-engine guard.
            if auto && self.params_cross_devices(launch) {
                crate::shard::note_shard_fallback(
                    "multi-device params cross devices: peer access needs the single queue",
                );
                return ShardMode::SingleQueue;
            }
            return ShardMode::ByRank { workers };
        }
        match crate::shard::single_device_fallback_reason(self, launch, check) {
            Some(reason) => {
                crate::shard::note_shard_fallback(&reason);
                ShardMode::SingleQueue
            }
            None => ShardMode::BySmCluster { workers },
        }
    }

    fn validate_with(&self, launch: &GridLaunch, check: bool) -> SimResult<()> {
        if launch.devices.is_empty() {
            return Err(SimError::InvalidLaunch("no devices".into()));
        }
        for &d in &launch.devices {
            if d >= self.num_gpus() {
                return Err(SimError::InvalidLaunch(format!(
                    "device {d} out of range ({} GPUs)",
                    self.num_gpus()
                )));
            }
        }
        {
            let mut seen = launch.devices.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != launch.devices.len() {
                return Err(SimError::InvalidLaunch("duplicate device".into()));
            }
        }
        if launch.params.len() != launch.devices.len() {
            return Err(SimError::InvalidLaunch(format!(
                "{} param sets for {} devices",
                launch.params.len(),
                launch.devices.len()
            )));
        }
        if launch.block_dim == 0 || launch.block_dim > self.arch.max_threads_per_block {
            return Err(SimError::InvalidLaunch(format!(
                "block_dim {} out of range",
                launch.block_dim
            )));
        }
        if launch.grid_dim == 0 {
            return Err(SimError::InvalidLaunch("grid_dim is zero".into()));
        }
        if launch.kernel.shared_words * 8 > self.arch.shared_mem_per_sm_bytes {
            return Err(SimError::InvalidLaunch(format!(
                "{} words of shared memory exceed the SM's capacity",
                launch.kernel.shared_words
            )));
        }
        match launch.kind {
            LaunchKind::Traditional | LaunchKind::Cooperative => {
                if launch.devices.len() != 1 {
                    return Err(SimError::InvalidLaunch(
                        "single-device launch on multiple devices".into(),
                    ));
                }
            }
            LaunchKind::CooperativeMultiDevice => {}
        }
        // Cooperative grids must be fully co-resident or grid.sync deadlocks;
        // CUDA rejects the launch instead.
        if launch.kind != LaunchKind::Traditional {
            let max = self
                .arch
                .max_cooperative_blocks(launch.block_dim, launch.kernel.shared_words * 8);
            if launch.grid_dim > max {
                return Err(SimError::InvalidLaunch(format!(
                    "cooperative launch of {} blocks exceeds co-resident capacity {}",
                    launch.grid_dim, max
                )));
            }
        }
        let uses_grid_sync = launch
            .kernel
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, crate::isa::Instr::GridSync));
        let uses_mgrid_sync = launch
            .kernel
            .program
            .instrs
            .iter()
            .any(|i| matches!(i, crate::isa::Instr::MultiGridSync));
        if uses_grid_sync && launch.kind == LaunchKind::Traditional {
            return Err(SimError::InvalidLaunch(
                "grid.sync() requires a cooperative launch".into(),
            ));
        }
        if uses_mgrid_sync && launch.kind != LaunchKind::CooperativeMultiDevice {
            return Err(SimError::InvalidLaunch(
                "multi_grid.sync() requires cudaLaunchCooperativeKernelMultiDevice".into(),
            ));
        }
        // Opt-in static synchronization lint: error-severity findings (a
        // divergent barrier, an out-of-bounds constant shared address, an
        // unbound parameter slot, a wild branch) reject the launch the way
        // CUDA's runtime rejects an illegal cooperative launch.
        if check {
            let bound = launch.params.iter().map(|p| p.len()).min().unwrap_or(0);
            let diags = crate::verify::check_launch(&launch.kernel, bound);
            if crate::verify::has_errors(&diags) {
                let rendered: String = diags
                    .iter()
                    .filter(|d| d.severity == crate::verify::Severity::Error)
                    .map(|d| d.render(&launch.kernel.program))
                    .collect();
                return Err(SimError::InvalidLaunch(format!(
                    "synccheck rejected kernel {:?}:\n{rendered}",
                    launch.kernel.name
                )));
            }
        }
        Ok(())
    }

    /// Time to copy `bytes` from `src` device to `dst` device over the node
    /// fabric (used by the host runtime's peer-copy model).
    pub fn peer_copy_time(&self, src: usize, dst: usize, bytes: u64) -> Ps {
        self.check_device(src);
        self.check_device(dst);
        if src == dst {
            // Device-local copy at DRAM bandwidth (read + write).
            let gbs = self.arch.memory.dram_effective_gbs() / 2.0;
            return Ps((bytes as f64 / (gbs / 1e3)).ceil() as u64);
        }
        let gbs = self.topology.peer_bandwidth_gbs(src, dst);
        let lat = self.topology.flag_latency(src, dst);
        lat + Ps((bytes as f64 / (gbs / 1e3)).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::KernelBuilder;

    fn null_kernel() -> Kernel {
        let mut b = KernelBuilder::new("null");
        b.exit();
        b.build(0)
    }

    fn grid_sync_kernel() -> Kernel {
        let mut b = KernelBuilder::new("gs");
        b.grid_sync();
        b.build(0)
    }

    #[test]
    fn alloc_and_read_back() {
        let mut sys = GpuSystem::single(GpuArch::v100());
        let b = sys.alloc_f64(0, &[1.0, 2.0, 3.0]);
        assert_eq!(sys.read_f64(b), vec![1.0, 2.0, 3.0]);
        let z = sys.alloc(0, 4);
        assert_eq!(sys.read_u64(z), vec![0; 4]);
    }

    #[test]
    fn linear_alloc_is_cheap_and_readable() {
        let mut sys = GpuSystem::single(GpuArch::v100());
        let b = sys.alloc_linear(0, 2.0, 0.5, 1 << 40);
        assert_eq!(sys.buffer(b).len(), 1 << 40);
        assert_eq!(f64::from_bits(sys.buffer(b).load(4).unwrap()), 4.0);
    }

    fn exec(sys: &mut GpuSystem, l: &GridLaunch) -> SimResult<RunArtifacts> {
        sys.execute(l, &RunOptions::new())
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut sys = GpuSystem::single(GpuArch::v100());
        let k = null_kernel();
        // zero grid
        let l = GridLaunch::single(k.clone(), 0, 32, vec![]);
        assert!(matches!(
            exec(&mut sys, &l),
            Err(SimError::InvalidLaunch(_))
        ));
        // oversized block
        let l = GridLaunch::single(k.clone(), 1, 2048, vec![]);
        assert!(exec(&mut sys, &l).is_err());
        // bad device
        let l = GridLaunch::single(k, 1, 32, vec![]).on_device(3);
        assert!(exec(&mut sys, &l).is_err());
    }

    #[test]
    fn grid_sync_requires_cooperative_launch() {
        let mut sys = GpuSystem::single(GpuArch::v100());
        let l = GridLaunch::single(grid_sync_kernel(), 8, 32, vec![]);
        assert!(matches!(
            exec(&mut sys, &l),
            Err(SimError::InvalidLaunch(_))
        ));
        let l = GridLaunch::single(grid_sync_kernel(), 8, 32, vec![]).cooperative();
        assert!(exec(&mut sys, &l).is_ok());
    }

    #[test]
    fn cooperative_launch_must_fit_coresident() {
        let mut sys = GpuSystem::single(GpuArch::v100());
        // 1024-thread blocks: 2 per SM * 80 SMs = 160 max.
        let l = GridLaunch::single(grid_sync_kernel(), 161, 1024, vec![]).cooperative();
        assert!(matches!(
            exec(&mut sys, &l),
            Err(SimError::InvalidLaunch(_))
        ));
        let l = GridLaunch::single(grid_sync_kernel(), 160, 1024, vec![]).cooperative();
        assert!(exec(&mut sys, &l).is_ok());
    }

    #[test]
    fn traditional_launch_may_oversubscribe() {
        let mut sys = GpuSystem::single(GpuArch::v100());
        let l = GridLaunch::single(null_kernel(), 10_000, 256, vec![]);
        let arts = exec(&mut sys, &l).unwrap();
        assert_eq!(arts.report.blocks_run, 10_000);
        // Nothing was asked for beyond the report.
        assert!(arts.hazards.is_none());
        assert!(arts.trace.is_none());
        assert!(arts.profile.is_none());
        assert!(arts.is_clean());
    }

    #[test]
    fn multi_grid_sync_requires_multi_device_launch() {
        let mut sys = GpuSystem::new(GpuArch::v100(), gpu_node::NodeTopology::dgx1_v100());
        let mut b = KernelBuilder::new("mg");
        b.multi_grid_sync();
        let k = b.build(0);
        let l = GridLaunch::single(k.clone(), 8, 32, vec![]).cooperative();
        assert!(exec(&mut sys, &l).is_err());
        let l = GridLaunch::multi(k, 8, 32, vec![0, 1], vec![vec![], vec![]]);
        assert!(exec(&mut sys, &l).is_ok());
    }

    #[test]
    fn checked_launch_rejects_divergent_barrier_statically() {
        use crate::isa::{Operand::*, Special};
        let mut sys = GpuSystem::single(GpuArch::v100());
        let mut b = KernelBuilder::new("divbar");
        let c = b.reg();
        b.cmp_lt(c, Sp(Special::Tid), Imm(16));
        b.bra_ifz(Reg(c), "out");
        b.bar_sync();
        b.label("out");
        b.exit();
        let k = b.build(0);
        // Unchecked: the engine itself tolerates this (lanes converge on the
        // barrier's warp arrival rules), so only checking rejects it. Arm
        // checking both ways: via options and via the legacy launch flag.
        let l = GridLaunch::single(k, 1, 32, vec![]);
        for (launch, opts) in [
            (l.clone(), RunOptions::new().check()),
            (l.checked(), RunOptions::new()),
        ] {
            match sys.execute(&launch, &opts) {
                Err(SimError::InvalidLaunch(msg)) => {
                    assert!(msg.contains("barrier-divergence"), "{msg}");
                    assert!(msg.contains("bar.sync"), "{msg}");
                }
                other => panic!("expected InvalidLaunch, got {other:?}"),
            }
        }
    }

    #[test]
    fn checked_execute_surfaces_smem_race() {
        use crate::isa::{Instr, Operand::*, Special};
        let mut sys = GpuSystem::single(GpuArch::v100());
        let mut b = KernelBuilder::new("smemrace");
        // Every thread stores its tid to word 0 with no barrier: WAW races.
        b.push(Instr::StShared {
            addr: Imm(0),
            val: Sp(Special::Tid),
            volatile: false,
            pred: None,
        });
        b.exit();
        let k = b.build(1);
        let l = GridLaunch::single(k, 1, 32, vec![]);
        let arts = sys.execute(&l, &RunOptions::new().check()).unwrap();
        assert!(!arts.is_clean());
        let hazards = arts.hazards.expect("checking was armed");
        assert!(!hazards.is_clean());
        assert!(hazards
            .records
            .iter()
            .all(|r| r.hazard.kind == crate::mem::HazardKind::Waw));
        assert_eq!(hazards.records[0].hazard.pc, Some(0));
        // Unchecked, no hazard evidence is collected at all.
        let arts = sys.execute(&l, &RunOptions::new()).unwrap();
        assert!(arts.hazards.is_none());
        assert!(arts.is_clean());
    }

    #[test]
    fn racecheck_and_profiling_do_not_perturb_timing() {
        use crate::isa::{Instr, Operand::*, Special};
        let mut sys = GpuSystem::single(GpuArch::v100());
        // Racecheck-clean: private slots, a block barrier, then a
        // cross-thread read on the far side of the barrier.
        let mut b = KernelBuilder::new("cleansmem");
        let r = b.reg();
        b.push(Instr::StShared {
            addr: Sp(Special::Tid),
            val: Sp(Special::Tid),
            volatile: false,
            pred: None,
        });
        b.bar_sync();
        b.push(Instr::LdShared {
            dst: r,
            addr: Sp(Special::LaneId),
            volatile: false,
        });
        b.exit();
        let k = b.build(64);
        let l = GridLaunch::single(k, 4, 64, vec![]);
        let plain = sys.execute(&l, &RunOptions::new()).unwrap().report;
        let checked = sys.execute(&l, &RunOptions::new().check()).unwrap();
        assert!(checked.hazards.as_ref().unwrap().is_clean());
        assert_eq!(plain, checked.report, "checking must not change timing");
        let profiled = sys.execute(&l, &RunOptions::new().profile()).unwrap();
        assert!(profiled.profile.is_some());
        assert_eq!(plain, profiled.report, "profiling must not change timing");
    }

    #[test]
    fn checked_launch_rejects_unbound_param() {
        use crate::isa::{Instr, Operand::*};
        let mut sys = GpuSystem::single(GpuArch::v100());
        let mut b = KernelBuilder::new("needsparam");
        let r = b.reg();
        b.push(Instr::LdGlobal {
            dst: r,
            buf: Param(0),
            idx: Imm(0),
        });
        b.exit();
        let k = b.build(0);
        let l = GridLaunch::single(k, 1, 32, vec![]);
        match sys.execute(&l, &RunOptions::new().check()) {
            Err(SimError::InvalidLaunch(msg)) => {
                assert!(msg.contains("unbound-param"), "{msg}")
            }
            other => panic!("expected InvalidLaunch, got {other:?}"),
        }
    }

    #[test]
    fn peer_copy_time_scales_with_link() {
        let sys = GpuSystem::new(GpuArch::v100(), gpu_node::NodeTopology::dgx1_v100());
        let near = sys.peer_copy_time(0, 1, 1 << 20);
        let far = sys.peer_copy_time(0, 5, 1 << 20);
        assert!(far > near);
        let local = sys.peer_copy_time(0, 0, 1 << 20);
        assert!(local < near);
    }

    /// Pins the axis-selection rules: the policy names a worker count, the
    /// launch shape names the decomposition axis, and every ineligible
    /// single-device launch falls back to the single queue.
    #[test]
    fn sharding_selection_follows_launch_shape() {
        let mut sys = GpuSystem::new(GpuArch::v100(), gpu_node::NodeTopology::dgx1_v100());
        let buf = sys.alloc(0, 8 * 64);
        let single = GridLaunch::single(
            crate::kernels::sync_chain(crate::kernels::SyncOp::Grid, 2),
            8,
            64,
            vec![buf.0 as u64],
        )
        .cooperative();
        let multi = GridLaunch::multi(
            crate::kernels::sync_chain(crate::kernels::SyncOp::MultiGrid, 2),
            8,
            64,
            vec![0, 1],
            vec![vec![], vec![]],
        );
        let opts4 = RunOptions::new().shards(4);
        // Single-device + eligible kernel: cluster sharding, whichever
        // variant carried the worker count.
        assert_eq!(
            sys.decide_sharding(&single, &opts4, false),
            ShardMode::BySmCluster { workers: 4 }
        );
        assert_eq!(
            sys.decide_sharding(
                &single,
                &RunOptions::new().shard_policy(ShardPolicy::BySmCluster { workers: 2 }),
                false
            ),
            ShardMode::BySmCluster { workers: 2 }
        );
        // Checked runs need the launch-wide racecheck ordering.
        assert_eq!(
            sys.decide_sharding(&single, &opts4, true),
            ShardMode::SingleQueue
        );
        // No workers — explicitly or via the process default of 0.
        assert_eq!(
            sys.decide_sharding(&single, &RunOptions::new().shards(0), false),
            ShardMode::SingleQueue
        );
        assert_eq!(
            sys.decide_sharding(&single, &RunOptions::new(), false),
            ShardMode::SingleQueue
        );
        // A 1-SM device has nothing to partition.
        let mut one_sm = GpuArch::v100();
        one_sm.num_sms = 1;
        let mut tiny = GpuSystem::single(one_sm);
        let tbuf = tiny.alloc(0, 64);
        let tiny_launch = GridLaunch::single(
            crate::kernels::sync_chain(crate::kernels::SyncOp::Grid, 2),
            1,
            64,
            vec![tbuf.0 as u64],
        )
        .cooperative();
        assert_eq!(
            tiny.decide_sharding(&tiny_launch, &opts4, false),
            ShardMode::SingleQueue
        );
        // Multi-device launches keep the by-rank axis.
        assert_eq!(
            sys.decide_sharding(&multi, &opts4, false),
            ShardMode::ByRank { workers: 4 }
        );
    }
}
