//! The simulated instruction set and kernel builder.
//!
//! Kernels are small register-machine programs, deliberately close to the
//! PTX-level shapes the paper's micro-benchmarks compile to: dependent ALU
//! chains (Wong's method), barrier repeats, shuffle trees, clock reads around
//! divergent branches (Fig. 17), grid-stride streaming loops (Fig. 10), and
//! `nanosleep`-controlled kernels (Fig. 3).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Register index. Each thread owns [`NUM_REGS`] 64-bit registers.
pub type Reg = u8;

/// Registers per thread.
pub const NUM_REGS: usize = 16;

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operand {
    /// A thread register.
    Reg(Reg),
    /// An immediate 64-bit value (use `f64::to_bits` for float immediates).
    Imm(u64),
    /// A special (read-only) register.
    Sp(Special),
    /// A kernel parameter slot, bound at launch.
    Param(u8),
}

/// Special read-only registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Special {
    /// Thread index within the block.
    Tid,
    /// Lane index within the warp.
    LaneId,
    /// Warp index within the block.
    WarpId,
    /// Block index within the (per-device) grid.
    BlockId,
    /// Threads per block.
    BlockDim,
    /// Blocks per device grid.
    GridDim,
    /// Device rank within a multi-device launch (0 for single-device).
    GpuRank,
    /// Number of devices in the launch.
    NumGpus,
    /// Global thread index: `BlockId * BlockDim + Tid`.
    GlobalTid,
    /// Total threads in this device's grid: `GridDim * BlockDim`.
    GridThreads,
}

/// Shuffle flavours — tile-group vs coalesced-group shuffles cost differently
/// (paper Table II) and behave differently on Pascal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShflKind {
    Tile,
    Coalesced,
}

/// Shuffle addressing mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShflMode {
    /// Read the register of `lane + delta` (identity when out of range).
    Down(u32),
    /// Read the register of an absolute lane.
    Idx(u32),
}

/// One instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    // --- integer ALU ---
    IAdd(Reg, Operand, Operand),
    ISub(Reg, Operand, Operand),
    IMul(Reg, Operand, Operand),
    IMin(Reg, Operand, Operand),
    /// Bitwise and.
    IAnd(Reg, Operand, Operand),
    /// dst = (a < b) as 0/1 (unsigned).
    CmpLt(Reg, Operand, Operand),
    /// dst = (a == b) as 0/1.
    CmpEq(Reg, Operand, Operand),
    Mov(Reg, Operand),
    /// dst = (f64)(src as integer) — integer-to-float conversion.
    I2F(Reg, Operand),

    // --- floating point (f64 bit patterns in registers) ---
    FAdd(Reg, Operand, Operand),
    FMul(Reg, Operand, Operand),
    /// FP32-latency add (still computed in f64): the instruction both
    /// measurement methods of §IX must time at 4 (V100) / 6 (P100) cycles.
    FAdd32(Reg, Operand, Operand),

    // --- control flow ---
    /// Unconditional branch to an instruction index.
    Bra(u32),
    /// Branch when the operand is non-zero.
    BraIf(Operand, u32),
    /// Branch when the operand is zero.
    BraIfZ(Operand, u32),
    /// Thread exits the kernel.
    Exit,

    // --- shared memory (per-block), addresses in 8-byte words ---
    LdShared {
        dst: Reg,
        addr: Operand,
        volatile: bool,
    },
    StShared {
        addr: Operand,
        val: Operand,
        volatile: bool,
        /// Optional predicate: store only in threads where it is non-zero.
        /// (Compilers predicate short `if` bodies instead of branching.)
        pred: Option<Operand>,
    },

    // --- global memory (device buffers), indices in 8-byte words ---
    LdGlobal {
        dst: Reg,
        buf: Operand,
        idx: Operand,
    },
    StGlobal {
        buf: Operand,
        idx: Operand,
        val: Operand,
    },
    /// f64 atomic add on a device buffer; optionally returns the old value.
    AtomicFAdd {
        dst_old: Option<Reg>,
        buf: Operand,
        idx: Operand,
        val: Operand,
    },
    /// Integer compare-and-swap on a device buffer word: store `val` when
    /// the current word equals `cmp`; optionally returns the old value
    /// (`atomicCAS`). Timed like every global atomic: one L2 round trip
    /// serialized through the L2 atomic unit.
    AtomicCas {
        dst_old: Option<Reg>,
        buf: Operand,
        idx: Operand,
        cmp: Operand,
        val: Operand,
    },
    /// Integer atomic exchange on a device buffer word; optionally returns
    /// the old value (`atomicExch`).
    AtomicExch {
        dst_old: Option<Reg>,
        buf: Operand,
        idx: Operand,
        val: Operand,
    },
    /// Unsigned integer fetch-add on a device buffer word; optionally
    /// returns the pre-add value (`atomicAdd` on `unsigned int`, the
    /// arrival counter of every software barrier).
    AtomicIAdd {
        dst_old: Option<Reg>,
        buf: Operand,
        idx: Operand,
        val: Operand,
    },
    /// Spin until the flag cell `buf[idx]` is `>= target` (unsigned). Each
    /// poll is a full L2 atomic round trip; between failed polls the warp
    /// backs off for the architecture's poll interval, so a waiting warp
    /// does not saturate the L2 atomic unit. Needs no cooperative launch —
    /// the whole point of flag-cell sync.
    WaitGe {
        buf: Operand,
        idx: Operand,
        target: Operand,
    },
    /// Release-store `val` to the flag cell `buf[idx]` through the L2
    /// atomic unit (an `atomicExch` whose old value is discarded, i.e. the
    /// producer side of a tile-ready flag).
    Signal {
        buf: Operand,
        idx: Operand,
        val: Operand,
    },

    // --- warp data exchange / synchronization ---
    Shfl {
        dst: Reg,
        val: Operand,
        kind: ShflKind,
        mode: ShflMode,
        /// Tile width for `Tile` shuffles (1..=32, power of two).
        width: u32,
    },
    /// Tile-group barrier over lanes partitioned into `width`-sized tiles.
    SyncTile {
        width: u32,
    },
    /// Coalesced-group barrier (the currently converged active threads).
    SyncCoalesced,
    /// Block barrier (`__syncthreads`).
    BarSync,
    /// Grid barrier (requires a cooperative launch).
    GridSync,
    /// Multi-grid barrier (requires a multi-device cooperative launch).
    MultiGridSync,
    /// Memory fence: commits this thread's pending shared stores.
    MemFence,

    // --- timing utilities ---
    /// Sleep this warp for an operand number of nanoseconds.
    Nanosleep(Operand),
    /// Read the SM cycle counter into a register.
    ReadClock(Reg),

    // --- vectorized streaming (Fig. 10 loop, one event per warp) ---
    /// `acc += sum of f64 buf[i] for i = start, start+stride, ... while i <
    /// len`, per thread, plus `flops` f64 adds per element. Timed by the
    /// DRAM bandwidth/latency model.
    MemStream {
        acc: Reg,
        buf: Operand,
        start: Operand,
        stride: Operand,
        len: Operand,
        flops: u8,
        /// Achieved fraction of the tuned streaming bandwidth, in permille
        /// (1000 = the architecture's full streaming efficiency). Baselines
        /// with less ideal access patterns set this below 1000.
        eff_permille: u16,
    },
    /// Vectorized elementwise combine: `dst[i] = a[i] + b[i]` for
    /// `i = start, start+stride, ... < len`, per thread. The workhorse of
    /// collective operations (allreduce steps); timed like [`Instr::MemStream`]
    /// with three streams' worth of traffic, remote buffers paying their
    /// link.
    MemCombine {
        dst: Operand,
        a: Operand,
        b: Operand,
        start: Operand,
        stride: Operand,
        len: Operand,
    },
    /// Same loop over this block's shared memory, timed by the shared-memory
    /// port model (Table III micro-benchmark / the serial scan of Table V).
    SmemStream {
        acc: Reg,
        start: Operand,
        stride: Operand,
        len: Operand,
        /// Extra f64 adds per element (the Fig. 10 micro-benchmark carries
        /// two imitation adds; a plain reduction scan carries none).
        flops: u8,
    },
}

/// A finished program: straight-line instruction array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    pub instrs: Vec<Instr>,
}

impl Program {
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

/// A kernel: a program plus its static shared-memory footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    pub name: String,
    pub program: Program,
    /// Static shared memory per block, in 8-byte words.
    pub shared_words: u32,
    /// Architectural registers each thread uses (the builder's high-water
    /// mark) — an input to register-limited occupancy.
    pub regs_per_thread: u32,
}

/// Builder with labels, forward references, and convenience emitters.
///
/// ```
/// use gpu_sim::isa::{KernelBuilder, Operand::*, Special};
/// let mut b = KernelBuilder::new("count");
/// let r = b.reg();
/// b.mov(r, Imm(0));
/// b.label("loop");
/// b.iadd(r, Reg(r), Imm(1));
/// let c = b.reg();
/// b.cmp_lt(c, Reg(r), Imm(10));
/// b.bra_if(Reg(c), "loop");
/// let k = b.build(0);
/// assert_eq!(k.program.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: HashMap<String, u32>,
    /// (instruction index, label) patches to resolve at build time.
    patches: Vec<(usize, String)>,
    next_reg: Reg,
}

impl KernelBuilder {
    pub fn new(name: &str) -> KernelBuilder {
        KernelBuilder {
            name: name.to_string(),
            ..Default::default()
        }
    }

    /// Allocate a fresh register.
    pub fn reg(&mut self) -> Reg {
        assert!(
            (self.next_reg as usize) < NUM_REGS,
            "out of registers ({} available)",
            NUM_REGS
        );
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: &str) {
        let at = self.instrs.len() as u32;
        let prev = self.labels.insert(name.to_string(), at);
        assert!(prev.is_none(), "duplicate label {name:?}");
    }

    pub fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // Convenience emitters for the common instructions.
    pub fn mov(&mut self, d: Reg, a: Operand) -> &mut Self {
        self.push(Instr::Mov(d, a))
    }
    pub fn iadd(&mut self, d: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::IAdd(d, a, b))
    }
    pub fn isub(&mut self, d: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::ISub(d, a, b))
    }
    pub fn imul(&mut self, d: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::IMul(d, a, b))
    }
    pub fn fadd(&mut self, d: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::FAdd(d, a, b))
    }
    pub fn fadd32(&mut self, d: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::FAdd32(d, a, b))
    }
    pub fn cmp_lt(&mut self, d: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::CmpLt(d, a, b))
    }
    pub fn cmp_eq(&mut self, d: Reg, a: Operand, b: Operand) -> &mut Self {
        self.push(Instr::CmpEq(d, a, b))
    }
    pub fn read_clock(&mut self, d: Reg) -> &mut Self {
        self.push(Instr::ReadClock(d))
    }
    pub fn atomic_cas(
        &mut self,
        dst_old: Option<Reg>,
        buf: Operand,
        idx: Operand,
        cmp: Operand,
        val: Operand,
    ) -> &mut Self {
        self.push(Instr::AtomicCas {
            dst_old,
            buf,
            idx,
            cmp,
            val,
        })
    }
    pub fn atomic_exch(
        &mut self,
        dst_old: Option<Reg>,
        buf: Operand,
        idx: Operand,
        val: Operand,
    ) -> &mut Self {
        self.push(Instr::AtomicExch {
            dst_old,
            buf,
            idx,
            val,
        })
    }
    pub fn atomic_iadd(
        &mut self,
        dst_old: Option<Reg>,
        buf: Operand,
        idx: Operand,
        val: Operand,
    ) -> &mut Self {
        self.push(Instr::AtomicIAdd {
            dst_old,
            buf,
            idx,
            val,
        })
    }
    pub fn wait_ge(&mut self, buf: Operand, idx: Operand, target: Operand) -> &mut Self {
        self.push(Instr::WaitGe { buf, idx, target })
    }
    pub fn signal(&mut self, buf: Operand, idx: Operand, val: Operand) -> &mut Self {
        self.push(Instr::Signal { buf, idx, val })
    }
    pub fn bar_sync(&mut self) -> &mut Self {
        self.push(Instr::BarSync)
    }
    pub fn grid_sync(&mut self) -> &mut Self {
        self.push(Instr::GridSync)
    }
    pub fn multi_grid_sync(&mut self) -> &mut Self {
        self.push(Instr::MultiGridSync)
    }
    pub fn exit(&mut self) -> &mut Self {
        self.push(Instr::Exit)
    }

    /// Branch to a label (forward references allowed).
    pub fn bra(&mut self, label: &str) -> &mut Self {
        self.patches.push((self.instrs.len(), label.to_string()));
        self.push(Instr::Bra(u32::MAX))
    }

    pub fn bra_if(&mut self, cond: Operand, label: &str) -> &mut Self {
        self.patches.push((self.instrs.len(), label.to_string()));
        self.push(Instr::BraIf(cond, u32::MAX))
    }

    pub fn bra_ifz(&mut self, cond: Operand, label: &str) -> &mut Self {
        self.patches.push((self.instrs.len(), label.to_string()));
        self.push(Instr::BraIfZ(cond, u32::MAX))
    }

    /// Emit `n` copies of an instruction (the paper's `repeat(N)` macro).
    pub fn repeat(&mut self, n: usize, i: Instr) -> &mut Self {
        for _ in 0..n {
            self.push(i);
        }
        self
    }

    /// Resolve labels and produce the kernel, panicking on malformed input.
    /// Registry kernels use this; fallible callers want [`Self::try_build`].
    pub fn build(self, shared_words: u32) -> Kernel {
        self.try_build(shared_words)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Resolve labels and produce the kernel.
    ///
    /// Rejects undefined labels, patches that landed on non-branch
    /// instructions (impossible via the emitters, but reachable through
    /// direct field manipulation in this module), and branch targets beyond
    /// the program end. A target *equal* to the program length is legal: the
    /// engine treats a pc one past the end as an implicit exit, and a label
    /// defined after the last instruction resolves there.
    pub fn try_build(mut self, shared_words: u32) -> Result<Kernel, BuildError> {
        for (at, label) in &self.patches {
            let target = *self
                .labels
                .get(label)
                .ok_or_else(|| BuildError::UndefinedLabel(label.clone()))?;
            match &mut self.instrs[*at] {
                Instr::Bra(t) | Instr::BraIf(_, t) | Instr::BraIfZ(_, t) => *t = target,
                other => {
                    return Err(BuildError::PatchNotBranch {
                        at: *at as u32,
                        instr: format!("{other:?}"),
                    })
                }
            }
        }
        let len = self.instrs.len() as u32;
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Instr::Bra(t) | Instr::BraIf(_, t) | Instr::BraIfZ(_, t) = i {
                if *t > len {
                    return Err(BuildError::TargetOutOfBounds {
                        at: pc as u32,
                        target: *t,
                        len,
                    });
                }
            }
        }
        Ok(Kernel {
            name: self.name,
            program: Program {
                instrs: self.instrs,
            },
            shared_words,
            regs_per_thread: self.next_reg as u32,
        })
    }
}

/// Reasons [`KernelBuilder::try_build`] rejects a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never defined.
    UndefinedLabel(String),
    /// A branch patch landed on a non-branch instruction.
    PatchNotBranch { at: u32, instr: String },
    /// A branch target lies beyond the program end (targets equal to the
    /// length are the implicit exit and are allowed).
    TargetOutOfBounds { at: u32, target: u32, len: u32 },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UndefinedLabel(l) => write!(f, "undefined label {l:?}"),
            BuildError::PatchNotBranch { at, instr } => {
                write!(f, "branch patch at pc {at} hit non-branch {instr}")
            }
            BuildError::TargetOutOfBounds { at, target, len } => write!(
                f,
                "branch at pc {at} targets {target}, beyond program of {len} instruction(s)"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Float immediate helper.
pub fn fimm(v: f64) -> Operand {
    Operand::Imm(v.to_bits())
}

#[cfg(test)]
mod tests {
    use super::Operand::*;
    use super::*;

    #[test]
    fn builder_allocates_registers() {
        let mut b = KernelBuilder::new("t");
        let r0 = b.reg();
        let r1 = b.reg();
        assert_eq!((r0, r1), (0, 1));
    }

    #[test]
    #[should_panic]
    fn builder_register_exhaustion_panics() {
        let mut b = KernelBuilder::new("t");
        for _ in 0..=NUM_REGS {
            b.reg();
        }
    }

    #[test]
    fn labels_resolve_backward_and_forward() {
        let mut b = KernelBuilder::new("t");
        b.label("top");
        b.bra("bottom");
        b.mov(0, Imm(1));
        b.bra("top");
        b.label("bottom");
        b.exit();
        let k = b.build(0);
        assert_eq!(k.program.instrs[0], Instr::Bra(3));
        assert_eq!(k.program.instrs[2], Instr::Bra(0));
    }

    #[test]
    #[should_panic]
    fn undefined_label_panics_at_build() {
        let mut b = KernelBuilder::new("t");
        b.bra("nowhere");
        let _ = b.build(0);
    }

    #[test]
    fn try_build_reports_undefined_label() {
        let mut b = KernelBuilder::new("t");
        b.bra("nowhere");
        match b.try_build(0) {
            Err(BuildError::UndefinedLabel(l)) => assert_eq!(l, "nowhere"),
            other => panic!("expected UndefinedLabel, got {other:?}"),
        }
    }

    #[test]
    fn try_build_rejects_target_beyond_program() {
        let mut b = KernelBuilder::new("t");
        b.push(Instr::Bra(5));
        b.exit();
        match b.try_build(0) {
            Err(BuildError::TargetOutOfBounds { at, target, len }) => {
                assert_eq!((at, target, len), (0, 5, 2));
            }
            other => panic!("expected TargetOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn try_build_allows_target_at_program_end() {
        // A label defined after the last instruction resolves to the program
        // length: the engine's implicit exit.
        let mut b = KernelBuilder::new("t");
        b.bra("end");
        b.mov(0, Imm(1));
        b.label("end");
        let k = b.try_build(0).expect("end-of-program target is legal");
        assert_eq!(k.program.instrs[0], Instr::Bra(2));
    }

    #[test]
    fn build_error_displays() {
        assert!(BuildError::UndefinedLabel("x".into())
            .to_string()
            .contains("\"x\""));
        assert!(BuildError::TargetOutOfBounds {
            at: 3,
            target: 9,
            len: 4
        }
        .to_string()
        .contains("pc 3"));
    }

    #[test]
    #[should_panic]
    fn duplicate_label_panics() {
        let mut b = KernelBuilder::new("t");
        b.label("x");
        b.label("x");
    }

    #[test]
    fn repeat_unrolls() {
        let mut b = KernelBuilder::new("t");
        b.repeat(5, Instr::SyncTile { width: 32 });
        let k = b.build(0);
        assert_eq!(k.program.len(), 5);
        assert!(k
            .program
            .instrs
            .iter()
            .all(|i| matches!(i, Instr::SyncTile { width: 32 })));
    }

    #[test]
    fn fimm_round_trips() {
        if let Imm(bits) = fimm(2.5) {
            assert_eq!(f64::from_bits(bits), 2.5);
        } else {
            panic!("fimm did not produce an immediate");
        }
    }
}
