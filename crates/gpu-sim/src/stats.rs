//! Process-wide execution accounting for the perf harness.
//!
//! `repro --bench` reports instructions-per-second per experiment, but an
//! experiment is an arbitrary tree of sweeps and launches — there is no
//! single `ExecReport` to read a total from. Instead every
//! [`crate::GpuSystem::execute`] adds its report's `instrs_executed` to one
//! process-wide counter, and the harness brackets each experiment with
//! [`reset_instrs`] / [`instrs_executed`].
//!
//! The counter is a relaxed atomic sum: addition commutes, so the total is
//! identical whatever order parallel sweep workers finish in — it is one of
//! the deterministic fields CI diffs across `--jobs` values.

use std::sync::atomic::{AtomicU64, Ordering};

static INSTRS: AtomicU64 = AtomicU64::new(0);

/// Add a finished run's instruction count to the process-wide total.
pub(crate) fn count_instrs(n: u64) {
    INSTRS.fetch_add(n, Ordering::Relaxed);
}

/// Instructions executed by every launch since the last [`reset_instrs`].
pub fn instrs_executed() -> u64 {
    INSTRS.load(Ordering::Relaxed)
}

/// Zero the process-wide instruction counter.
pub fn reset_instrs() {
    INSTRS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        // Other tests in the binary run launches concurrently, so only the
        // monotone-accumulation property is assertable here.
        let before = instrs_executed();
        count_instrs(7);
        count_instrs(5);
        assert!(instrs_executed() >= before + 12);
    }
}
