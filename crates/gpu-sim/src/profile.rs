//! `syncprof`: deterministic per-warp stall attribution and per-SM counters.
//!
//! The paper's results are *attributions* — how many cycles each sync
//! primitive costs and where warps spend their time waiting (barrier-arrival
//! serialization in Fig. 7, L2 atomic round-trips in §VII, launch gaps in
//! Table I) — so the engine can account every picosecond a warp spends into
//! one of a fixed set of buckets:
//!
//! * **issue stall** — waiting for a scheduler issue slot (plus divergence
//!   re-queue switch costs),
//! * **exec** — ALU/branch/shuffle latency after issue,
//! * **barrier wait, by scope** — parked at a tile/coalesced, block, grid, or
//!   multi-grid barrier, measured from the warp's first parked lane to its
//!   release (paper Figs. 4, 5, 7, 9),
//! * **memory** — shared/global access latency and stream transfers,
//! * **atomic** — L2 atomic round-trips (the grid-barrier arrival path),
//! * **flag wait** — spinning on a `WaitGe` flag cell (fine-grained
//!   producer/consumer sync), successful polls and back-off retries alike,
//! * **sleep** — `__nanosleep` residency.
//!
//! Counters are integral picoseconds accumulated in deterministic event
//! order, so a [`ProfileReport`] is byte-identical for a given launch no
//! matter how many sweep worker threads (`--jobs`) ran around it.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Barrier scope of a wait or a release epoch (paper §III's hierarchy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SyncScope {
    /// Warp-level: `__syncwarp` tiles and coalesced groups (Tables II/V).
    Tile,
    /// `__syncthreads` / `bar.sync` (Fig. 7).
    Block,
    /// `grid.sync()` via cooperative groups (Fig. 5).
    Grid,
    /// `multi_grid.sync()` across devices (Fig. 9).
    MultiGrid,
}

impl SyncScope {
    pub fn label(self) -> &'static str {
        match self {
            SyncScope::Tile => "tile",
            SyncScope::Block => "block",
            SyncScope::Grid => "grid",
            SyncScope::MultiGrid => "multi-grid",
        }
    }
}

/// Picoseconds a set of warps spent in each attribution bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// Waiting for a scheduler issue slot (incl. divergence switch costs).
    pub issue_stall_ps: u64,
    /// Post-issue ALU / branch / shuffle / clock latency.
    pub exec_ps: u64,
    /// Parked at a warp-level (tile / coalesced) barrier.
    pub tile_wait_ps: u64,
    /// Parked at a block barrier.
    pub block_wait_ps: u64,
    /// Parked at a grid barrier.
    pub grid_wait_ps: u64,
    /// Parked at a multi-grid barrier.
    pub multi_grid_wait_ps: u64,
    /// Shared / global memory latency and stream transfers.
    pub mem_ps: u64,
    /// L2 atomic round-trips.
    pub atomic_ps: u64,
    /// Spinning on a flag cell (`WaitGe` polls, successful and backed-off).
    pub flag_wait_ps: u64,
    /// `__nanosleep` residency.
    pub sleep_ps: u64,
}

impl StallBreakdown {
    pub fn add(&mut self, o: &StallBreakdown) {
        self.issue_stall_ps += o.issue_stall_ps;
        self.exec_ps += o.exec_ps;
        self.tile_wait_ps += o.tile_wait_ps;
        self.block_wait_ps += o.block_wait_ps;
        self.grid_wait_ps += o.grid_wait_ps;
        self.multi_grid_wait_ps += o.multi_grid_wait_ps;
        self.mem_ps += o.mem_ps;
        self.atomic_ps += o.atomic_ps;
        self.flag_wait_ps += o.flag_wait_ps;
        self.sleep_ps += o.sleep_ps;
    }

    pub fn barrier_wait_ps(&self, scope: SyncScope) -> u64 {
        match scope {
            SyncScope::Tile => self.tile_wait_ps,
            SyncScope::Block => self.block_wait_ps,
            SyncScope::Grid => self.grid_wait_ps,
            SyncScope::MultiGrid => self.multi_grid_wait_ps,
        }
    }

    pub fn barrier_wait_mut(&mut self, scope: SyncScope) -> &mut u64 {
        match scope {
            SyncScope::Tile => &mut self.tile_wait_ps,
            SyncScope::Block => &mut self.block_wait_ps,
            SyncScope::Grid => &mut self.grid_wait_ps,
            SyncScope::MultiGrid => &mut self.multi_grid_wait_ps,
        }
    }

    /// Total barrier wait across every scope.
    pub fn total_barrier_wait_ps(&self) -> u64 {
        self.tile_wait_ps + self.block_wait_ps + self.grid_wait_ps + self.multi_grid_wait_ps
    }

    /// Every bucket summed — total attributed warp time.
    pub fn total_ps(&self) -> u64 {
        self.issue_stall_ps
            + self.exec_ps
            + self.total_barrier_wait_ps()
            + self.mem_ps
            + self.atomic_ps
            + self.flag_wait_ps
            + self.sleep_ps
    }
}

/// One SM's stall attribution and occupancy counters within a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmProfile {
    /// Device rank within the launch.
    pub rank: u32,
    pub sm: u32,
    pub stalls: StallBreakdown,
    /// Instructions accepted by this SM's scheduler slots.
    pub instrs_issued: u64,
    /// Picoseconds the SM's scheduler slots were occupied by issue intervals.
    pub issue_busy_ps: u64,
    pub blocks_started: u64,
    pub warps_started: u64,
    /// High-water mark of co-resident blocks on this SM.
    pub peak_resident_blocks: u32,
}

impl SmProfile {
    pub(crate) fn empty(rank: u32, sm: u32) -> SmProfile {
        SmProfile {
            rank,
            sm,
            stalls: StallBreakdown::default(),
            instrs_issued: 0,
            issue_busy_ps: 0,
            blocks_started: 0,
            warps_started: 0,
            peak_resident_blocks: 0,
        }
    }

    fn is_idle(&self) -> bool {
        self.blocks_started == 0 && self.instrs_issued == 0
    }

    fn add(&mut self, o: &SmProfile) {
        self.stalls.add(&o.stalls);
        self.instrs_issued += o.instrs_issued;
        self.issue_busy_ps += o.issue_busy_ps;
        self.blocks_started += o.blocks_started;
        self.warps_started += o.warps_started;
        self.peak_resident_blocks = self.peak_resident_blocks.max(o.peak_resident_blocks);
    }
}

/// A barrier-release instant (one flag flip observed by a whole block or
/// grid) — rendered as an instant event on the Perfetto track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BarrierEpoch {
    /// Simulated time of the release, in picoseconds from launch start.
    pub at_ps: u64,
    /// Device rank within the launch.
    pub rank: u32,
    pub scope: SyncScope,
}

/// Attribution for every launch of one kernel (merged by kernel name).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    pub kernel: String,
    pub launches: u64,
    /// Sum of `per_sm` stalls.
    pub totals: StallBreakdown,
    pub instrs_issued: u64,
    /// Per-(rank, SM) breakdown, ascending (rank, sm); idle SMs omitted.
    pub per_sm: Vec<SmProfile>,
}

impl KernelProfile {
    fn add(&mut self, o: &KernelProfile) {
        self.launches += o.launches;
        self.totals.add(&o.totals);
        self.instrs_issued += o.instrs_issued;
        for sp in &o.per_sm {
            match self
                .per_sm
                .binary_search_by_key(&(sp.rank, sp.sm), |s| (s.rank, s.sm))
            {
                Ok(i) => self.per_sm[i].add(sp),
                Err(i) => self.per_sm.insert(i, sp.clone()),
            }
        }
    }
}

/// Cap on stored barrier epochs (per report and after merging); releases
/// beyond it are counted in `epochs_dropped`.
pub const EPOCH_CAP: usize = 4096;

/// The `syncprof` profile of one or more kernel launches: deterministic,
/// serializable, and mergeable (sweep cells merge their per-cell reports in
/// plan order, so the result is identical at any `--jobs`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Picoseconds per device-clock cycle (for cycle-denominated rendering).
    pub ps_per_cycle: f64,
    /// Per-kernel attribution, ascending by kernel name.
    pub kernels: Vec<KernelProfile>,
    /// Barrier-release instants of the *first* profiled launch window(s),
    /// capped at [`EPOCH_CAP`].
    pub epochs: Vec<BarrierEpoch>,
    pub epochs_dropped: u64,
}

impl ProfileReport {
    /// An empty report to merge cell profiles into.
    pub fn empty(ps_per_cycle: f64) -> ProfileReport {
        ProfileReport {
            ps_per_cycle,
            kernels: Vec::new(),
            epochs: Vec::new(),
            epochs_dropped: 0,
        }
    }

    pub(crate) fn from_parts(
        ps_per_cycle: f64,
        kernel: String,
        sms: Vec<SmProfile>,
        epochs: Vec<BarrierEpoch>,
        epochs_dropped: u64,
    ) -> ProfileReport {
        let mut totals = StallBreakdown::default();
        let mut instrs_issued = 0;
        let mut per_sm: Vec<SmProfile> = Vec::new();
        for sp in sms {
            if sp.is_idle() {
                continue;
            }
            totals.add(&sp.stalls);
            instrs_issued += sp.instrs_issued;
            per_sm.push(sp);
        }
        per_sm.sort_by_key(|s| (s.rank, s.sm));
        ProfileReport {
            ps_per_cycle,
            kernels: vec![KernelProfile {
                kernel,
                launches: 1,
                totals,
                instrs_issued,
                per_sm,
            }],
            epochs,
            epochs_dropped,
        }
    }

    /// Fold another report into this one. Kernels merge by name; epochs
    /// append in merge order up to [`EPOCH_CAP`]. Merging in a fixed (plan)
    /// order keeps the result deterministic across `--jobs` values.
    pub fn merge(&mut self, other: &ProfileReport) {
        if self.ps_per_cycle == 0.0 {
            self.ps_per_cycle = other.ps_per_cycle;
        }
        for k in &other.kernels {
            match self
                .kernels
                .binary_search_by(|c| c.kernel.as_str().cmp(k.kernel.as_str()))
            {
                Ok(i) => self.kernels[i].add(k),
                Err(i) => self.kernels.insert(i, k.clone()),
            }
        }
        for &e in &other.epochs {
            if self.epochs.len() < EPOCH_CAP {
                self.epochs.push(e);
            } else {
                self.epochs_dropped += 1;
            }
        }
        self.epochs_dropped += other.epochs_dropped;
    }

    /// Total barrier wait at `scope` across every kernel, in picoseconds.
    pub fn barrier_wait_ps(&self, scope: SyncScope) -> u64 {
        self.kernels
            .iter()
            .map(|k| k.totals.barrier_wait_ps(scope))
            .sum()
    }

    /// Grand total of every attribution bucket, in picoseconds.
    pub fn total_ps(&self) -> u64 {
        self.kernels.iter().map(|k| k.totals.total_ps()).sum()
    }

    fn cycles(&self, ps: u64) -> f64 {
        if self.ps_per_cycle > 0.0 {
            ps as f64 / self.ps_per_cycle
        } else {
            0.0
        }
    }

    /// Serialize to pretty JSON (byte-deterministic for a given report).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serializes")
    }

    /// Render a fixed-width text summary (byte-deterministic).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "syncprof: {} kernel(s), {} barrier epoch(s){}",
            self.kernels.len(),
            self.epochs.len(),
            if self.epochs_dropped > 0 {
                format!(" (+{} dropped)", self.epochs_dropped)
            } else {
                String::new()
            }
        );
        let _ = writeln!(
            s,
            "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "kernel",
            "launches",
            "issue-stall",
            "exec",
            "tile-wait",
            "block-wait",
            "grid-wait",
            "mgrid-wait",
            "mem",
            "atomic",
            "flag-wait",
            "sleep"
        );
        for k in &self.kernels {
            let t = &k.totals;
            let _ = writeln!(
                s,
                "{:<28} {:>8} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
                k.kernel,
                k.launches,
                self.cycles(t.issue_stall_ps),
                self.cycles(t.exec_ps),
                self.cycles(t.tile_wait_ps),
                self.cycles(t.block_wait_ps),
                self.cycles(t.grid_wait_ps),
                self.cycles(t.multi_grid_wait_ps),
                self.cycles(t.mem_ps),
                self.cycles(t.atomic_ps),
                self.cycles(t.flag_wait_ps),
                self.cycles(t.sleep_ps)
            );
        }
        let _ = writeln!(s, "(columns in device cycles; per-warp time summed per SM)");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sm(rank: u32, sm_: u32, block_wait: u64) -> SmProfile {
        let mut s = SmProfile::empty(rank, sm_);
        s.stalls.block_wait_ps = block_wait;
        s.instrs_issued = 1;
        s.blocks_started = 1;
        s
    }

    #[test]
    fn merge_combines_kernels_by_name_and_sm() {
        let a = ProfileReport::from_parts(1000.0, "k".into(), vec![sm(0, 0, 10)], vec![], 0);
        let b = ProfileReport::from_parts(
            1000.0,
            "k".into(),
            vec![sm(0, 0, 5), sm(0, 1, 7)],
            vec![],
            0,
        );
        let mut m = ProfileReport::empty(1000.0);
        m.merge(&a);
        m.merge(&b);
        assert_eq!(m.kernels.len(), 1);
        assert_eq!(m.kernels[0].launches, 2);
        assert_eq!(m.kernels[0].totals.block_wait_ps, 22);
        assert_eq!(m.kernels[0].per_sm.len(), 2);
        assert_eq!(m.kernels[0].per_sm[0].stalls.block_wait_ps, 15);
        assert_eq!(m.barrier_wait_ps(SyncScope::Block), 22);
    }

    #[test]
    fn merge_order_determines_bytes_not_jobs() {
        // Same merge order -> identical JSON, regardless of who produced the
        // per-cell reports.
        let cells: Vec<ProfileReport> = (0..4)
            .map(|i| {
                ProfileReport::from_parts(
                    1000.0,
                    format!("k{}", i % 2),
                    vec![sm(0, i, 100 + i as u64)],
                    vec![BarrierEpoch {
                        at_ps: i as u64,
                        rank: 0,
                        scope: SyncScope::Grid,
                    }],
                    0,
                )
            })
            .collect();
        let fold = |cells: &[ProfileReport]| {
            let mut m = ProfileReport::empty(1000.0);
            for c in cells {
                m.merge(c);
            }
            m.to_json()
        };
        assert_eq!(fold(&cells), fold(&cells));
    }

    #[test]
    fn epoch_cap_counts_drops() {
        let epochs = vec![
            BarrierEpoch {
                at_ps: 1,
                rank: 0,
                scope: SyncScope::Block
            };
            10
        ];
        let a = ProfileReport::from_parts(1.0, "k".into(), vec![], epochs, 3);
        let mut m = ProfileReport::empty(1.0);
        m.merge(&a);
        assert_eq!(m.epochs.len(), 10);
        assert_eq!(m.epochs_dropped, 3);
    }

    #[test]
    fn idle_sms_are_dropped_from_reports() {
        let r = ProfileReport::from_parts(
            1.0,
            "k".into(),
            vec![SmProfile::empty(0, 0), sm(0, 1, 4)],
            vec![],
            0,
        );
        assert_eq!(r.kernels[0].per_sm.len(), 1);
        assert_eq!(r.kernels[0].per_sm[0].sm, 1);
    }

    // ---- engine-level attribution (paper-facing behaviour) ----

    fn profiled(
        num_sms: u32,
        op: crate::kernels::SyncOp,
        blocks: u32,
        threads: u32,
        cooperative: bool,
    ) -> ProfileReport {
        use crate::{GpuSystem, GridLaunch, RunOptions};
        let mut arch = gpu_arch::GpuArch::v100();
        arch.num_sms = num_sms;
        let mut sys = GpuSystem::single(arch);
        let out = sys.alloc(0, (blocks * threads) as u64);
        let k = crate::kernels::sync_chain(op, 4);
        let mut l = GridLaunch::single(k, blocks, threads, vec![out.0 as u64]);
        if cooperative {
            l = l.cooperative();
        }
        sys.execute(&l, &RunOptions::new().profile())
            .unwrap()
            .profile
            .unwrap()
    }

    /// Grid-wide synchronization must show up as grid-scope wait — the
    /// headline counter behind the paper's Fig. 5/6 latency curves.
    #[test]
    fn grid_sync_attributes_grid_scope_wait() {
        let r = profiled(2, crate::kernels::SyncOp::Grid, 4, 64, true);
        assert!(
            r.barrier_wait_ps(SyncScope::Grid) > 0,
            "no grid wait recorded: {}",
            r.render()
        );
        // Grid barriers release in epochs; each of the 4 repeats is one.
        assert!(
            r.epochs.iter().any(|e| e.scope == SyncScope::Grid),
            "no grid epochs"
        );
        assert!(r.total_ps() >= r.barrier_wait_ps(SyncScope::Grid));
    }

    /// Paper Fig. 7: `__syncthreads()` cost rises with resident blocks per
    /// SM. Per-block barrier-wait must grow as co-residency goes up.
    #[test]
    fn block_barrier_wait_grows_with_blocks_per_sm() {
        let wait_per_block = |blocks: u32| {
            let r = profiled(1, crate::kernels::SyncOp::Block, blocks, 256, false);
            r.barrier_wait_ps(SyncScope::Block) as f64 / blocks as f64
        };
        let lone = wait_per_block(1);
        let packed = wait_per_block(8);
        assert!(
            packed > lone,
            "block-wait per block should grow with blocks/SM: 1 -> {lone}, 8 -> {packed}"
        );
    }

    /// A kernel without barriers must not accrue barrier-wait in any scope.
    #[test]
    fn barrier_free_kernel_has_no_barrier_wait() {
        use crate::{GpuSystem, GridLaunch, RunOptions};
        let mut sys = GpuSystem::single(gpu_arch::GpuArch::v100());
        let out = sys.alloc(0, 8 * 64);
        let k = crate::kernels::fadd32_chain(64);
        let l = GridLaunch::single(k, 8, 64, vec![out.0 as u64]);
        let r = sys
            .execute(&l, &RunOptions::new().profile())
            .unwrap()
            .profile
            .unwrap();
        assert_eq!(
            r.kernels[0].totals.total_barrier_wait_ps(),
            0,
            "{}",
            r.render()
        );
        assert!(r.kernels[0].instrs_issued > 0);
        assert!(r.epochs.is_empty());
    }
}
