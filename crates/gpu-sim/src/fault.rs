//! Deterministic fault injection: the `syncfault` layer.
//!
//! A [`FaultPlan`] is a seeded, serializable description of how a run should
//! be perturbed — which warps straggle, which SMs are throttled, how the
//! inter-device links are degraded, which barrier arrivals are delayed, and
//! which blocks never reach their grid-level barrier. Arm it through
//! [`crate::RunOptions::faults`]; the engine derives every decision from the
//! plan's seed with counter-based hashing (never from execution order), so a
//! faulted run is byte-deterministic across `--jobs` values and replays.
//!
//! All magnitudes are fixed-point **permille** integers (1000 = 1.0×):
//! probabilities are drawn as `hash % 1000 < p`, multipliers scale integer
//! picosecond latencies exactly. That keeps the plan `Eq`/hashable and the
//! perturbed timeline free of float accumulation. A zero plan
//! ([`FaultPlan::is_zero`]) injects nothing and leaves every artifact
//! byte-identical to an unarmed run.

use serde::{Deserialize, Serialize};

/// Identity latency multiplier (1.0× in permille fixed-point).
pub const IDENT_PERMILLE: u32 = 1000;

/// A seeded, serializable description of the faults to inject into one run.
///
/// ```
/// use gpu_sim::FaultPlan;
/// let plan = FaultPlan::seeded(7)
///     .stragglers(250, 4000)      // 25% of warps run 4.0x slower
///     .degrade_links(2000, 1000); // inter-GPU latency doubled
/// assert!(!plan.is_zero());
/// assert!(FaultPlan::seeded(7).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root of every per-entity draw; two plans differing only in seed
    /// straggle different warps.
    pub seed: u64,
    /// Probability (permille) that a warp is a straggler.
    pub straggler_permille: u16,
    /// Latency multiplier (permille) on every step of a straggler warp —
    /// instruction and memory latencies alike.
    pub straggler_mult_permille: u32,
    /// Probability (permille) that an SM's clock is throttled.
    pub sm_throttle_permille: u16,
    /// Latency multiplier (permille) on every warp of a throttled SM.
    pub sm_throttle_mult_permille: u32,
    /// Multiplier (permille) on inter-device flag latency and arrival
    /// serialization (NVLink/PCIe path degradation).
    pub link_latency_mult_permille: u32,
    /// Divisor (permille) on inter-device peer bandwidth: 2000 halves it.
    pub link_bw_mult_permille: u32,
    /// Transient link flaps: every `flap_period_ns` of simulated time the
    /// links go down for `flap_down_ns`; traffic starting in the down window
    /// waits it out. 0 disables.
    pub flap_period_ns: u64,
    pub flap_down_ns: u64,
    /// Probability (permille) that a block-level barrier arrival is delayed.
    pub barrier_delay_permille: u16,
    /// Extra delay (ns) charged to each delayed barrier arrival.
    pub barrier_delay_ns: u64,
    /// `(rank, block_on_device)` pairs that never reach a grid or multi-grid
    /// barrier — the paper's §VIII-B partial-arrival hang, on demand. The
    /// queue drains and the run returns [`sim_core::SimError::Deadlock`].
    pub killed_blocks: Vec<(u32, u32)>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// A plan that injects nothing; compose faults with the builder arms.
    pub const fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            straggler_permille: 0,
            straggler_mult_permille: IDENT_PERMILLE,
            sm_throttle_permille: 0,
            sm_throttle_mult_permille: IDENT_PERMILLE,
            link_latency_mult_permille: IDENT_PERMILLE,
            link_bw_mult_permille: IDENT_PERMILLE,
            flap_period_ns: 0,
            flap_down_ns: 0,
            barrier_delay_permille: 0,
            barrier_delay_ns: 0,
            killed_blocks: Vec::new(),
        }
    }

    /// Make each warp a straggler with probability `permille`/1000; straggler
    /// steps take `mult_permille`/1000 times as long.
    pub fn stragglers(mut self, permille: u16, mult_permille: u32) -> FaultPlan {
        self.straggler_permille = permille;
        self.straggler_mult_permille = mult_permille;
        self
    }

    /// Throttle each SM with probability `permille`/1000; every warp on a
    /// throttled SM runs `mult_permille`/1000 times slower.
    pub fn sm_throttle(mut self, permille: u16, mult_permille: u32) -> FaultPlan {
        self.sm_throttle_permille = permille;
        self.sm_throttle_mult_permille = mult_permille;
        self
    }

    /// Degrade every inter-device path: flag latency and arrival
    /// serialization scaled by `lat_mult_permille`/1000, peer bandwidth
    /// divided by `bw_mult_permille`/1000.
    pub fn degrade_links(mut self, lat_mult_permille: u32, bw_mult_permille: u32) -> FaultPlan {
        self.link_latency_mult_permille = lat_mult_permille;
        self.link_bw_mult_permille = bw_mult_permille;
        self
    }

    /// Flap the inter-device links: down for `down_ns` at the start of every
    /// `period_ns` of simulated time.
    pub fn link_flaps(mut self, period_ns: u64, down_ns: u64) -> FaultPlan {
        self.flap_period_ns = period_ns;
        self.flap_down_ns = down_ns;
        self
    }

    /// Delay each block-level barrier arrival by `delay_ns` with probability
    /// `permille`/1000.
    pub fn delay_barriers(mut self, permille: u16, delay_ns: u64) -> FaultPlan {
        self.barrier_delay_permille = permille;
        self.barrier_delay_ns = delay_ns;
        self
    }

    /// Block `block` of device rank `rank` never arrives at a grid or
    /// multi-grid barrier.
    pub fn kill_block(mut self, rank: u32, block: u32) -> FaultPlan {
        self.killed_blocks.push((rank, block));
        self
    }

    /// Whether this plan perturbs nothing (the seed alone is not a fault).
    /// A zero plan armed via `RunOptions` must leave every artifact
    /// byte-identical to an unarmed run — pinned by the golden tests.
    pub fn is_zero(&self) -> bool {
        (self.straggler_permille == 0 || self.straggler_mult_permille == IDENT_PERMILLE)
            && (self.sm_throttle_permille == 0 || self.sm_throttle_mult_permille == IDENT_PERMILLE)
            && self.link_latency_mult_permille == IDENT_PERMILLE
            && self.link_bw_mult_permille == IDENT_PERMILLE
            && (self.flap_period_ns == 0 || self.flap_down_ns == 0)
            && (self.barrier_delay_permille == 0 || self.barrier_delay_ns == 0)
            && self.killed_blocks.is_empty()
    }

    /// Whether any link-level fault (degradation or flaps) is armed.
    pub fn degrades_links(&self) -> bool {
        self.link_latency_mult_permille != IDENT_PERMILLE
            || self.link_bw_mult_permille != IDENT_PERMILLE
    }
}

/// Deterministic per-entity draw: SplitMix64-fold the seed with each part.
/// Execution order never feeds in, so a draw for (warp, block, rank) is the
/// same whatever the event interleaving — the bedrock of `--jobs` and
/// replay byte-determinism.
pub fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut z = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        z = z.wrapping_add(p).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// Domain tags for [`mix`], so draws of different fault kinds never collide.
pub(crate) const TAG_STRAGGLER: u64 = 1;
pub(crate) const TAG_SM_THROTTLE: u64 = 2;
pub(crate) const TAG_BARRIER_DELAY: u64 = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_detection() {
        assert!(FaultPlan::seeded(42).is_zero());
        // Probability without effect, or effect without probability, is zero.
        assert!(FaultPlan::seeded(1).stragglers(500, 1000).is_zero());
        assert!(FaultPlan::seeded(1).stragglers(0, 4000).is_zero());
        assert!(FaultPlan::seeded(1).link_flaps(1000, 0).is_zero());
        assert!(FaultPlan::seeded(1).delay_barriers(100, 0).is_zero());
        // Any real perturbation flips it.
        assert!(!FaultPlan::seeded(1).stragglers(500, 2000).is_zero());
        assert!(!FaultPlan::seeded(1).sm_throttle(100, 3000).is_zero());
        assert!(!FaultPlan::seeded(1).degrade_links(2000, 1000).is_zero());
        assert!(!FaultPlan::seeded(1).degrade_links(1000, 2000).is_zero());
        assert!(!FaultPlan::seeded(1).link_flaps(1000, 100).is_zero());
        assert!(!FaultPlan::seeded(1).delay_barriers(100, 50).is_zero());
        assert!(!FaultPlan::seeded(1).kill_block(0, 3).is_zero());
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plan = FaultPlan::seeded(7)
            .stragglers(250, 4000)
            .degrade_links(2000, 1500)
            .kill_block(1, 2);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn mix_is_seed_and_order_sensitive() {
        let a = mix(1, &[10, 20]);
        assert_eq!(a, mix(1, &[10, 20]), "deterministic");
        assert_ne!(a, mix(2, &[10, 20]), "seed feeds in");
        assert_ne!(a, mix(1, &[20, 10]), "part order feeds in");
        assert_ne!(mix(1, &[TAG_STRAGGLER, 5]), mix(1, &[TAG_SM_THROTTLE, 5]));
    }

    #[test]
    fn mix_draws_are_roughly_uniform() {
        // 25% permille threshold over 4000 draws should land near 1000.
        let hits = (0..4000u64)
            .filter(|&i| mix(7, &[TAG_STRAGGLER, i]) % 1000 < 250)
            .count();
        assert!((800..1200).contains(&hits), "{hits}");
    }
}
