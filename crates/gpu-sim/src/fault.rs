//! Deterministic fault injection: the `syncfault` layer.
//!
//! A [`FaultPlan`] is a seeded, serializable description of how a run should
//! be perturbed — which warps straggle, which SMs are throttled, how the
//! inter-device links are degraded, which barrier arrivals are delayed, and
//! which blocks never reach their grid-level barrier. Arm it through
//! [`crate::RunOptions::faults`]; the engine derives every decision from the
//! plan's seed with counter-based hashing (never from execution order), so a
//! faulted run is byte-deterministic across `--jobs` values and replays.
//!
//! All magnitudes are fixed-point **permille** integers (1000 = 1.0×):
//! probabilities are drawn as `hash % 1000 < p`, multipliers scale integer
//! picosecond latencies exactly. That keeps the plan `Eq`/hashable and the
//! perturbed timeline free of float accumulation. A zero plan
//! ([`FaultPlan::is_zero`]) injects nothing and leaves every artifact
//! byte-identical to an unarmed run.

use serde::{Deserialize, Serialize};

/// Identity latency multiplier (1.0× in permille fixed-point).
pub const IDENT_PERMILLE: u32 = 1000;

/// A seeded, serializable description of the faults to inject into one run.
///
/// ```
/// use gpu_sim::FaultPlan;
/// let plan = FaultPlan::seeded(7)
///     .stragglers(250, 4000)      // 25% of warps run 4.0x slower
///     .degrade_links(2000, 1000); // inter-GPU latency doubled
/// assert!(!plan.is_zero());
/// assert!(FaultPlan::seeded(7).is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root of every per-entity draw; two plans differing only in seed
    /// straggle different warps.
    pub seed: u64,
    /// Probability (permille) that a warp is a straggler.
    pub straggler_permille: u16,
    /// Latency multiplier (permille) on every step of a straggler warp —
    /// instruction and memory latencies alike.
    pub straggler_mult_permille: u32,
    /// Probability (permille) that an SM's clock is throttled.
    pub sm_throttle_permille: u16,
    /// Latency multiplier (permille) on every warp of a throttled SM.
    pub sm_throttle_mult_permille: u32,
    /// Multiplier (permille) on inter-device flag latency and arrival
    /// serialization (NVLink/PCIe path degradation).
    pub link_latency_mult_permille: u32,
    /// Divisor (permille) on inter-device peer bandwidth: 2000 halves it.
    pub link_bw_mult_permille: u32,
    /// Transient link flaps: every `flap_period_ns` of simulated time the
    /// links go down for `flap_down_ns`; traffic starting in the down window
    /// waits it out. 0 disables.
    pub flap_period_ns: u64,
    pub flap_down_ns: u64,
    /// Probability (permille) that a block-level barrier arrival is delayed.
    pub barrier_delay_permille: u16,
    /// Extra delay (ns) charged to each delayed barrier arrival.
    pub barrier_delay_ns: u64,
    /// `(rank, block_on_device)` pairs that never reach a grid or multi-grid
    /// barrier — the paper's §VIII-B partial-arrival hang, on demand. The
    /// queue drains and the run returns [`sim_core::SimError::Deadlock`].
    pub killed_blocks: Vec<(u32, u32)>,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::seeded(0)
    }
}

impl FaultPlan {
    /// A plan that injects nothing; compose faults with the builder arms.
    pub const fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            straggler_permille: 0,
            straggler_mult_permille: IDENT_PERMILLE,
            sm_throttle_permille: 0,
            sm_throttle_mult_permille: IDENT_PERMILLE,
            link_latency_mult_permille: IDENT_PERMILLE,
            link_bw_mult_permille: IDENT_PERMILLE,
            flap_period_ns: 0,
            flap_down_ns: 0,
            barrier_delay_permille: 0,
            barrier_delay_ns: 0,
            killed_blocks: Vec::new(),
        }
    }

    /// Make each warp a straggler with probability `permille`/1000; straggler
    /// steps take `mult_permille`/1000 times as long.
    pub fn stragglers(mut self, permille: u16, mult_permille: u32) -> FaultPlan {
        self.straggler_permille = permille;
        self.straggler_mult_permille = mult_permille;
        self
    }

    /// Throttle each SM with probability `permille`/1000; every warp on a
    /// throttled SM runs `mult_permille`/1000 times slower.
    pub fn sm_throttle(mut self, permille: u16, mult_permille: u32) -> FaultPlan {
        self.sm_throttle_permille = permille;
        self.sm_throttle_mult_permille = mult_permille;
        self
    }

    /// Degrade every inter-device path: flag latency and arrival
    /// serialization scaled by `lat_mult_permille`/1000, peer bandwidth
    /// divided by `bw_mult_permille`/1000.
    pub fn degrade_links(mut self, lat_mult_permille: u32, bw_mult_permille: u32) -> FaultPlan {
        self.link_latency_mult_permille = lat_mult_permille;
        self.link_bw_mult_permille = bw_mult_permille;
        self
    }

    /// Flap the inter-device links: down for `down_ns` at the start of every
    /// `period_ns` of simulated time.
    pub fn link_flaps(mut self, period_ns: u64, down_ns: u64) -> FaultPlan {
        self.flap_period_ns = period_ns;
        self.flap_down_ns = down_ns;
        self
    }

    /// Delay each block-level barrier arrival by `delay_ns` with probability
    /// `permille`/1000.
    pub fn delay_barriers(mut self, permille: u16, delay_ns: u64) -> FaultPlan {
        self.barrier_delay_permille = permille;
        self.barrier_delay_ns = delay_ns;
        self
    }

    /// Block `block` of device rank `rank` never arrives at a grid or
    /// multi-grid barrier.
    pub fn kill_block(mut self, rank: u32, block: u32) -> FaultPlan {
        self.killed_blocks.push((rank, block));
        self
    }

    /// Whether this plan perturbs nothing (the seed alone is not a fault).
    /// A zero plan armed via `RunOptions` must leave every artifact
    /// byte-identical to an unarmed run — pinned by the golden tests.
    pub fn is_zero(&self) -> bool {
        (self.straggler_permille == 0 || self.straggler_mult_permille == IDENT_PERMILLE)
            && (self.sm_throttle_permille == 0 || self.sm_throttle_mult_permille == IDENT_PERMILLE)
            && self.link_latency_mult_permille == IDENT_PERMILLE
            && self.link_bw_mult_permille == IDENT_PERMILLE
            && (self.flap_period_ns == 0 || self.flap_down_ns == 0)
            && (self.barrier_delay_permille == 0 || self.barrier_delay_ns == 0)
            && self.killed_blocks.is_empty()
    }

    /// Whether any link-level fault (degradation or flaps) is armed.
    pub fn degrades_links(&self) -> bool {
        self.link_latency_mult_permille != IDENT_PERMILLE
            || self.link_bw_mult_permille != IDENT_PERMILLE
    }

    /// Compact identity of this plan — the seed plus a `(tag, count)` pair
    /// per armed channel — threaded into [`sim_core::SimError::Deadlock`] /
    /// [`sim_core::SimError::Watchdog`] so the errors a plan provokes name
    /// it. Channel order is fixed, so equal plans always fingerprint to
    /// equal (and byte-identical when serialized) values.
    pub fn fingerprint(&self) -> sim_core::FaultFingerprint {
        let mut armed: Vec<(String, u32)> = Vec::new();
        let mut arm = |on: bool, tag: &str, count: u32| {
            if on {
                armed.push((tag.to_string(), count));
            }
        };
        arm(
            self.straggler_permille > 0 && self.straggler_mult_permille != IDENT_PERMILLE,
            "stragglers",
            1,
        );
        arm(
            self.sm_throttle_permille > 0 && self.sm_throttle_mult_permille != IDENT_PERMILLE,
            "sm-throttle",
            1,
        );
        arm(
            self.link_latency_mult_permille != IDENT_PERMILLE,
            "link-latency",
            1,
        );
        arm(
            self.link_bw_mult_permille != IDENT_PERMILLE,
            "link-bandwidth",
            1,
        );
        arm(
            self.flap_period_ns > 0 && self.flap_down_ns > 0,
            "link-flaps",
            1,
        );
        arm(
            self.barrier_delay_permille > 0 && self.barrier_delay_ns > 0,
            "barrier-delays",
            1,
        );
        arm(
            !self.killed_blocks.is_empty(),
            "killed-blocks",
            self.killed_blocks.len() as u32,
        );
        sim_core::FaultFingerprint {
            seed: self.seed,
            armed,
        }
    }

    /// The device ranks named by [`FaultPlan::killed_blocks`], sorted and
    /// deduplicated — the ranks a recovery policy may evict.
    pub fn killed_ranks(&self) -> Vec<u32> {
        let mut ranks: Vec<u32> = self.killed_blocks.iter().map(|&(r, _)| r).collect();
        ranks.sort_unstable();
        ranks.dedup();
        ranks
    }

    /// The plan as seen by a relaunch that evicted `ranks` (sorted original
    /// rank indices): kill entries on evicted ranks disappear with their
    /// rank, and surviving kill entries are renumbered to the compacted rank
    /// space. Every other channel is rank-agnostic and carries over.
    pub fn evict_ranks(&self, ranks: &[u32]) -> FaultPlan {
        let mut plan = self.clone();
        plan.killed_blocks = self
            .killed_blocks
            .iter()
            .filter(|(r, _)| !ranks.contains(r))
            .map(|&(r, b)| {
                let below = ranks.iter().filter(|&&e| e < r).count() as u32;
                (r - below, b)
            })
            .collect();
        plan
    }
}

/// Deterministic per-entity draw: SplitMix64-fold the seed with each part.
/// Execution order never feeds in, so a draw for (warp, block, rank) is the
/// same whatever the event interleaving — the bedrock of `--jobs` and
/// replay byte-determinism.
pub fn mix(seed: u64, parts: &[u64]) -> u64 {
    let mut z = seed ^ 0x9e37_79b9_7f4a_7c15;
    for &p in parts {
        z = z.wrapping_add(p).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
    }
    z
}

/// Domain tags for [`mix`], so draws of different fault kinds never collide.
pub(crate) const TAG_STRAGGLER: u64 = 1;
pub(crate) const TAG_SM_THROTTLE: u64 = 2;
pub(crate) const TAG_BARRIER_DELAY: u64 = 3;
/// Retry-backoff jitter draws of [`crate::recover`], keyed on the attempt
/// counter — never on execution order — so retry schedules are
/// byte-identical at any `--jobs`/`--shards` value.
pub(crate) const TAG_RETRY_BACKOFF: u64 = 4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_detection() {
        assert!(FaultPlan::seeded(42).is_zero());
        // Probability without effect, or effect without probability, is zero.
        assert!(FaultPlan::seeded(1).stragglers(500, 1000).is_zero());
        assert!(FaultPlan::seeded(1).stragglers(0, 4000).is_zero());
        assert!(FaultPlan::seeded(1).link_flaps(1000, 0).is_zero());
        assert!(FaultPlan::seeded(1).delay_barriers(100, 0).is_zero());
        // Any real perturbation flips it.
        assert!(!FaultPlan::seeded(1).stragglers(500, 2000).is_zero());
        assert!(!FaultPlan::seeded(1).sm_throttle(100, 3000).is_zero());
        assert!(!FaultPlan::seeded(1).degrade_links(2000, 1000).is_zero());
        assert!(!FaultPlan::seeded(1).degrade_links(1000, 2000).is_zero());
        assert!(!FaultPlan::seeded(1).link_flaps(1000, 100).is_zero());
        assert!(!FaultPlan::seeded(1).delay_barriers(100, 50).is_zero());
        assert!(!FaultPlan::seeded(1).kill_block(0, 3).is_zero());
    }

    #[test]
    fn plans_serialize_round_trip() {
        let plan = FaultPlan::seeded(7)
            .stragglers(250, 4000)
            .degrade_links(2000, 1500)
            .kill_block(1, 2);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn fingerprint_names_armed_channels_only() {
        let fp = FaultPlan::seeded(7).fingerprint();
        assert_eq!(fp.seed, 7);
        assert!(fp.armed.is_empty(), "{fp:?}");
        let fp = FaultPlan::seeded(9)
            .stragglers(250, 4000)
            .kill_block(1, 0)
            .kill_block(2, 3)
            .fingerprint();
        assert_eq!(
            fp.armed,
            vec![("stragglers".into(), 1), ("killed-blocks".into(), 2)]
        );
        // Probability-without-effect channels stay unarmed.
        let fp = FaultPlan::seeded(9).stragglers(250, 1000).fingerprint();
        assert!(fp.armed.is_empty(), "{fp:?}");
    }

    #[test]
    fn evicting_ranks_drops_and_renumbers_kills() {
        let plan = FaultPlan::seeded(3)
            .kill_block(1, 0)
            .kill_block(1, 2)
            .kill_block(3, 5);
        assert_eq!(plan.killed_ranks(), vec![1, 3]);
        // Evicting rank 1: its kills vanish, rank 3 compacts to rank 2.
        let after = plan.evict_ranks(&[1]);
        assert_eq!(after.killed_blocks, vec![(2, 5)]);
        // Evicting every killed rank leaves a kill-free plan.
        assert!(plan.evict_ranks(&[1, 3]).killed_blocks.is_empty());
        // Rank-agnostic channels carry over untouched.
        let degraded = FaultPlan::seeded(3)
            .degrade_links(2000, 1000)
            .kill_block(0, 0);
        let after = degraded.evict_ranks(&[0]);
        assert_eq!(after.link_latency_mult_permille, 2000);
    }

    #[test]
    fn mix_is_seed_and_order_sensitive() {
        let a = mix(1, &[10, 20]);
        assert_eq!(a, mix(1, &[10, 20]), "deterministic");
        assert_ne!(a, mix(2, &[10, 20]), "seed feeds in");
        assert_ne!(a, mix(1, &[20, 10]), "part order feeds in");
        assert_ne!(mix(1, &[TAG_STRAGGLER, 5]), mix(1, &[TAG_SM_THROTTLE, 5]));
    }

    #[test]
    fn mix_draws_are_roughly_uniform() {
        // 25% permille threshold over 4000 draws should land near 1000.
        let hits = (0..4000u64)
            .filter(|&i| mix(7, &[TAG_STRAGGLER, i]) % 1000 < 250)
            .count();
        assert!((800..1200).contains(&hits), "{hits}");
    }
}
