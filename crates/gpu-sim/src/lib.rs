//! # gpu-sim
//!
//! A discrete-event SIMT GPU simulator purpose-built to reproduce the
//! synchronization behaviour studied in "A Study of Single and Multi-device
//! Synchronization Methods in Nvidia GPUs" (Zhang et al., 2020):
//!
//! * a small PTX-shaped ISA with a kernel builder ([`isa`]),
//! * warps with per-thread PCs (Volta) or lockstep fencing (Pascal),
//!   min-PC-group divergence, and the full barrier hierarchy — tile /
//!   coalesced / shuffle, block, grid, and multi-grid ([`engine`]),
//! * shared memory with a store-visibility model that makes unsynchronized
//!   warp reductions *incorrect*, as on real hardware ([`mem`]),
//! * DRAM/L2/shared-memory port/barrier-unit contention models,
//! * deadlock detection for partial-group synchronization (paper §VIII-B), and
//! * seeded deterministic fault injection plus a progress watchdog for
//!   spin-barrier livelocks ([`fault`], [`RunOptions::faults`],
//!   [`RunOptions::watchdog`]), and
//! * an opt-in fault recovery layer — checkpointed retry with seeded
//!   backoff and rank eviction for multi-grid launches ([`recover`],
//!   [`RunOptions::recovery`]).

pub mod chrome_trace;
pub mod disasm;
pub mod engine;
pub mod fault;
pub mod isa;
pub mod kernels;
pub mod mem;
pub mod profile;
pub mod recover;
pub mod shard;
pub mod stats;
pub mod system;
pub mod timeline;
pub mod verify;

pub use chrome_trace::export_chrome_trace;
pub use disasm::{disassemble, instr_to_string};
pub use engine::{HazardRecord, HazardReport, TraceEvent};
pub use fault::FaultPlan;
pub use isa::{
    fimm, BuildError, Instr, Kernel, KernelBuilder, Operand, Program, Reg, ShflKind, ShflMode,
    Special,
};
pub use mem::{BufData, BufId, Buffer, Hazard, HazardKind, MemCheckpoint, SharedMem};
pub use profile::{
    BarrierEpoch, KernelProfile, ProfileReport, SmProfile, StallBreakdown, SyncScope,
};
pub use recover::{AttemptRecord, ErrorClass, RecoveryPolicy, RecoveryReport};
pub use shard::{
    default_shards, reset_shard_fallback_seen, set_default_shards, set_shard_fallback_hook,
    shard_fallback_scope, ShardFallbackHook, ShardFallbackScope,
};
pub use system::{
    ExecReport, GpuSystem, GridLaunch, LaunchKind, RunArtifacts, RunOptions, ShardPolicy,
};
pub use timeline::render_timeline;
pub use verify::{check_kernel, check_launch, render_report, Diagnostic, HazardClass, Severity};
