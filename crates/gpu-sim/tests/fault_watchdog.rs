//! Fault injection and the progress watchdog, end to end: livelocks caught
//! at every barrier scope, killed blocks surfacing as ordered deadlocks,
//! seeded jitter staying byte-deterministic, and the zero-fault/unarmed
//! configuration leaving reports untouched.

use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use gpu_sim::isa::{Instr, KernelBuilder, Operand::*, Special};
use gpu_sim::kernels::{self, SyncOp};
use gpu_sim::{FaultPlan, GpuSystem, GridLaunch, LaunchKind, RunOptions};
use sim_core::{Ps, SimError, StuckKind};

fn v100_small(sms: u32) -> GpuArch {
    let mut a = GpuArch::v100();
    a.num_sms = sms;
    a
}

/// 10 us of simulated time with no PC-watermark advance or retirement.
const BUDGET: Ps = Ps(10_000_000);

/// A multi-device launch over `devices`, mirroring the §VIII-B probes.
fn mgrid_launch(kernel: gpu_sim::Kernel, grid_dim: u32, block_dim: u32) -> GridLaunch {
    GridLaunch {
        kernel,
        grid_dim,
        block_dim,
        kind: LaunchKind::CooperativeMultiDevice,
        devices: vec![0, 1],
        params: vec![vec![], vec![]],
        checked: false,
    }
}

// ---------- watchdog: livelocks at each barrier scope -------------------------

/// Spin loop: `label("spin"); bra("spin")` — the PC watermark never
/// advances, so only the watchdog can end the run.
fn spin_forever(b: &mut KernelBuilder) {
    b.label("spin");
    b.bra("spin");
}

/// A kernel whose only work is waiting on a flag cell nobody ever signals.
fn wait_forever() -> gpu_sim::Kernel {
    let mut b = KernelBuilder::new("wait-forever");
    b.wait_ge(Param(0), Imm(0), Imm(1));
    b.exit();
    b.build(0)
}

#[test]
fn watchdog_catches_unsignalled_flag_wait_in_run_ahead_path() {
    // A single lone warp: after launch the event queue holds nothing but
    // this warp's own steps, so every `WaitGe` retry happens inside the
    // run-ahead inline loop — the watchdog must fire from inside it.
    let mut sys = GpuSystem::single(v100_small(1));
    let flag = sys.alloc(0, 1);
    let r = sys.execute(
        &GridLaunch::single(wait_forever(), 1, 32, vec![flag.0 as u64]),
        &RunOptions::new().watchdog(BUDGET),
    );
    match r {
        Err(SimError::Watchdog {
            at,
            last_progress,
            stuck,
            ..
        }) => {
            assert!(at >= BUDGET, "{at}");
            assert!(last_progress < at);
            assert_eq!(stuck.len(), 1, "{stuck:?}");
            assert_eq!(stuck[0].waiting, StuckKind::Spinning);
            // The top of the spin is the WaitGe itself (pc 0).
            assert_eq!(stuck[0].pc, 0);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_catches_unsignalled_flag_wait_in_pop_loop() {
    // Several warps across several SMs all poll the dead flag: their
    // interleaved retry events keep the queue non-empty, so the engine
    // stays in the pop loop — the watchdog must fire there too, and every
    // stuck warp must classify as spinning.
    let mut sys = GpuSystem::single(v100_small(2));
    let flag = sys.alloc(0, 1);
    let r = sys.execute(
        &GridLaunch::single(wait_forever(), 4, 64, vec![flag.0 as u64]),
        &RunOptions::new().watchdog(BUDGET),
    );
    match r {
        Err(SimError::Watchdog { at, stuck, .. }) => {
            assert!(at >= BUDGET, "{at}");
            // 4 blocks x 2 warps, sorted by (rank, sm, block, warp).
            assert_eq!(stuck.len(), 8, "{stuck:?}");
            assert!(stuck.iter().all(|s| s.waiting == StuckKind::Spinning));
            assert!(stuck.iter().all(|s| s.pc == 0));
            let sorted: Vec<_> = {
                let mut v = stuck.clone();
                v.sort();
                v
            };
            assert_eq!(stuck, sorted, "stuck warps must be reported sorted");
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn signalled_flag_wait_completes_without_watchdog() {
    // The same wait, but block 1 signals the flag: the waiters in block 0
    // proceed and the armed watchdog stays quiet.
    let mut b = KernelBuilder::new("signal-then-wait");
    let c = b.reg();
    b.cmp_eq(c, Sp(Special::BlockId), Imm(1));
    b.bra_ifz(Reg(c), "wait");
    b.signal(Param(0), Imm(0), Imm(1));
    b.exit();
    b.label("wait");
    b.wait_ge(Param(0), Imm(0), Imm(1));
    b.exit();
    let mut sys = GpuSystem::single(v100_small(2));
    let flag = sys.alloc(0, 1);
    sys.execute(
        &GridLaunch::single(b.build(0), 2, 32, vec![flag.0 as u64]),
        &RunOptions::new().watchdog(BUDGET),
    )
    .expect("signalled wait must complete");
    assert_eq!(sys.buffer(flag).load(0).unwrap(), 1);
}

#[test]
fn watchdog_catches_spin_against_a_half_warp_tile_barrier() {
    // Lanes >= 16 spin forever; lanes < 16 wait at a full-warp tile
    // barrier that can complete only when the spinners arrive.
    let mut b = KernelBuilder::new("tile-livelock");
    let c = b.reg();
    b.cmp_lt(c, Sp(Special::LaneId), Imm(16));
    b.bra_ifz(Reg(c), "spin");
    b.push(Instr::SyncTile { width: 32 });
    b.exit();
    spin_forever(&mut b);
    let r = GpuSystem::single(v100_small(1)).execute(
        &GridLaunch::single(b.build(0), 1, 32, vec![]),
        &RunOptions::new().watchdog(BUDGET),
    );
    match r {
        Err(SimError::Watchdog {
            at,
            last_progress,
            stuck,
            ..
        }) => {
            assert!(at >= BUDGET, "{at}");
            assert!(last_progress < at);
            assert!(!stuck.is_empty());
            // The one warp holds both halves; the waiting lanes registered
            // at the tile barrier (that wait dominates the classification),
            // while the spinning half keeps it from ever completing.
            assert_eq!(stuck[0].warp, 0);
            assert_eq!(stuck[0].waiting, StuckKind::TileBarrier);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_catches_spin_against_a_partial_block_barrier() {
    // Warp 1 spins forever; warp 0 waits at __syncthreads.
    let mut b = KernelBuilder::new("block-livelock");
    let c = b.reg();
    b.cmp_lt(c, Sp(Special::Tid), Imm(32));
    b.bra_ifz(Reg(c), "spin");
    b.bar_sync();
    b.exit();
    spin_forever(&mut b);
    let r = GpuSystem::single(v100_small(1)).execute(
        &GridLaunch::single(b.build(0), 1, 64, vec![]),
        &RunOptions::new().watchdog(BUDGET),
    );
    match r {
        Err(SimError::Watchdog { stuck, .. }) => {
            let kinds: Vec<StuckKind> = stuck.iter().map(|s| s.waiting).collect();
            assert!(kinds.contains(&StuckKind::BlockBarrier), "{stuck:?}");
            assert!(kinds.contains(&StuckKind::Spinning), "{stuck:?}");
            // Sorted by (rank, sm, block, warp): warp 0 first.
            assert_eq!(stuck[0].warp, 0);
            assert_eq!(stuck[1].warp, 1);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_catches_spin_against_a_subset_grid_barrier() {
    // Block 3 spins forever; blocks 0-2 wait at grid.sync().
    let mut b = KernelBuilder::new("grid-livelock");
    let c = b.reg();
    b.cmp_eq(c, Sp(Special::BlockId), Imm(3));
    b.bra_if(Reg(c), "spin");
    b.grid_sync();
    b.exit();
    spin_forever(&mut b);
    let r = GpuSystem::single(v100_small(4)).execute(
        &GridLaunch::single(b.build(0), 4, 32, vec![]).cooperative(),
        &RunOptions::new().watchdog(BUDGET),
    );
    match r {
        Err(SimError::Watchdog { stuck, .. }) => {
            assert_eq!(stuck.len(), 4);
            let grid_waiters = stuck
                .iter()
                .filter(|s| s.waiting == StuckKind::GridBarrier)
                .count();
            let spinners = stuck
                .iter()
                .filter(|s| s.waiting == StuckKind::Spinning)
                .count();
            assert_eq!((grid_waiters, spinners), (3, 1), "{stuck:?}");
            // Deterministic order: sorted by (rank, sm, block, warp).
            let mut sorted = stuck.clone();
            sorted.sort_unstable();
            assert_eq!(stuck, sorted);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn watchdog_catches_spin_against_a_subset_multi_grid_barrier() {
    // Device rank 1 spins forever; rank 0 waits at multi_grid.sync().
    let mut b = KernelBuilder::new("mgrid-livelock");
    let c = b.reg();
    b.cmp_eq(c, Sp(Special::GpuRank), Imm(1));
    b.bra_if(Reg(c), "spin");
    b.multi_grid_sync();
    b.exit();
    spin_forever(&mut b);
    let r = GpuSystem::new(v100_small(2), NodeTopology::dgx1_v100()).execute(
        &mgrid_launch(b.build(0), 2, 32),
        &RunOptions::new().watchdog(BUDGET),
    );
    match r {
        Err(SimError::Watchdog { stuck, .. }) => {
            let waiting: Vec<u32> = stuck
                .iter()
                .filter(|s| s.waiting == StuckKind::MultiGridBarrier)
                .map(|s| s.rank)
                .collect();
            let spinning: Vec<u32> = stuck
                .iter()
                .filter(|s| s.waiting == StuckKind::Spinning)
                .map(|s| s.rank)
                .collect();
            assert_eq!(waiting, vec![0, 0], "{stuck:?}");
            assert_eq!(spinning, vec![1, 1], "{stuck:?}");
            // rank is the leading sort key.
            let ranks: Vec<u32> = stuck.iter().map(|s| s.rank).collect();
            assert_eq!(ranks, vec![0, 0, 1, 1]);
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn armed_watchdog_never_fires_on_healthy_barrier_waits() {
    // A real grid-sync chain parks warps at barriers for long stretches;
    // barrier releases count as progress, so the watchdog must stay quiet
    // even with a budget far below the total runtime.
    let mut sys = GpuSystem::single(v100_small(4));
    let l = GridLaunch::single(kernels::sync_throughput(SyncOp::Grid, 64), 4, 128, vec![])
        .cooperative();
    let plain = sys.execute(&l, &RunOptions::new()).unwrap().report;
    sys.reset();
    let watched = sys
        .execute(&l, &RunOptions::new().watchdog(Ps(plain.duration.0 / 8)))
        .unwrap()
        .report;
    assert_eq!(plain, watched);
}

// ---------- killed blocks -----------------------------------------------------

#[test]
fn killed_block_hangs_the_grid_barrier_as_an_ordered_deadlock() {
    let plan = FaultPlan::seeded(3).kill_block(0, 1);
    let mut sys = GpuSystem::single(v100_small(4));
    let l =
        GridLaunch::single(kernels::sync_throughput(SyncOp::Grid, 2), 4, 32, vec![]).cooperative();
    match sys.execute(&l, &RunOptions::new().faults(plan)) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 4, "{blocked:?}");
            // Every block is reported: the killed one parked short of the
            // barrier, the other three waiting at it — in (rank, sm, block)
            // order, which on 4 SMs is block order.
            for (i, line) in blocked.iter().enumerate() {
                assert!(line.starts_with(&format!("block {i} ")), "{blocked:?}");
                assert!(line.contains("grid barrier"), "{blocked:?}");
            }
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn killed_block_hangs_the_multi_grid_barrier() {
    let plan = FaultPlan::seeded(3).kill_block(1, 0);
    let mut sys = GpuSystem::new(v100_small(2), NodeTopology::dgx1_v100());
    let l = mgrid_launch(kernels::sync_throughput(SyncOp::MultiGrid, 2), 1, 32);
    match sys.execute(&l, &RunOptions::new().faults(plan)) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 2, "{blocked:?}");
            assert!(blocked[0].contains("device rank 0"), "{blocked:?}");
            assert!(blocked[1].contains("device rank 1"), "{blocked:?}");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn killed_blocks_do_not_affect_block_level_barriers() {
    // The kill applies to grid/multi-grid arrival only; plain
    // __syncthreads kernels run to completion under the same plan.
    let plan = FaultPlan::seeded(3).kill_block(0, 0);
    let mut sys = GpuSystem::single(v100_small(2));
    let l = GridLaunch::single(kernels::sync_throughput(SyncOp::Block, 4), 2, 64, vec![]);
    sys.execute(&l, &RunOptions::new().faults(plan)).unwrap();
}

// ---------- determinism -------------------------------------------------------

fn faulted_report(plan: &FaultPlan) -> String {
    let mut sys = GpuSystem::single(v100_small(4));
    let l =
        GridLaunch::single(kernels::sync_throughput(SyncOp::Grid, 8), 4, 128, vec![]).cooperative();
    let arts = sys
        .execute(&l, &RunOptions::new().faults(plan.clone()))
        .unwrap();
    serde_json::to_string(&arts.report).unwrap()
}

#[test]
fn same_seed_gives_byte_identical_reports() {
    let plan = FaultPlan::seeded(7)
        .stragglers(250, 4000)
        .sm_throttle(250, 2000);
    assert_eq!(faulted_report(&plan), faulted_report(&plan));
}

#[test]
fn different_seeds_straggle_different_warps() {
    let a = faulted_report(&FaultPlan::seeded(7).stragglers(250, 4000));
    let b = faulted_report(&FaultPlan::seeded(8).stragglers(250, 4000));
    assert_ne!(a, b, "two seeds produced identical perturbations");
}

#[test]
fn stragglers_actually_slow_the_run() {
    let mut sys = GpuSystem::single(v100_small(2));
    let l = GridLaunch::single(kernels::sync_throughput(SyncOp::Block, 8), 2, 256, vec![]);
    let healthy = sys.execute(&l, &RunOptions::new()).unwrap().report;
    sys.reset();
    let plan = FaultPlan::seeded(7).stragglers(500, 4000);
    let faulted = sys
        .execute(&l, &RunOptions::new().faults(plan))
        .unwrap()
        .report;
    assert!(
        faulted.duration > healthy.duration,
        "faulted {} <= healthy {}",
        faulted.duration,
        healthy.duration
    );
}

// ---------- zero-fault / unarmed identity -------------------------------------

#[test]
fn zero_plan_and_unarmed_watchdog_leave_the_report_untouched() {
    let run = |opts: &RunOptions| {
        let mut sys = GpuSystem::single(v100_small(4));
        let l = GridLaunch::single(kernels::sync_throughput(SyncOp::Grid, 8), 4, 128, vec![])
            .cooperative();
        serde_json::to_string(&sys.execute(&l, opts).unwrap().report).unwrap()
    };
    let plain = run(&RunOptions::new());
    // A zero plan (seed alone is not a fault) must not perturb anything.
    let zero = run(&RunOptions::new().faults(FaultPlan::seeded(42)));
    assert_eq!(plain, zero);
    // An armed-but-unexpired watchdog only observes; it must not perturb.
    let watched = run(&RunOptions::new().watchdog(Ps(u64::MAX / 2)));
    assert_eq!(plain, watched);
    // Both together, with profiling and checks like the golden runs use.
    let both = run(&RunOptions::new()
        .faults(FaultPlan::seeded(42))
        .watchdog(Ps(u64::MAX / 2)));
    assert_eq!(plain, both);
}

// ---------- link faults -------------------------------------------------------

#[test]
fn degraded_links_slow_multi_grid_sync_only() {
    let run = |plan: Option<FaultPlan>, op: SyncOp| {
        let mut sys = GpuSystem::new(v100_small(2), NodeTopology::dgx1_v100());
        let l = match op {
            SyncOp::MultiGrid => mgrid_launch(kernels::sync_throughput(op, 4), 2, 32),
            _ => GridLaunch::single(kernels::sync_throughput(op, 4), 2, 32, vec![]).cooperative(),
        };
        let mut opts = RunOptions::new();
        if let Some(p) = plan {
            opts = opts.faults(p);
        }
        sys.execute(&l, &opts).unwrap().report.duration
    };
    let plan = FaultPlan::seeded(7).degrade_links(4000, 1000);
    // Multi-grid crosses the links: 4x flag latency must show.
    let healthy = run(None, SyncOp::MultiGrid);
    let degraded = run(Some(plan.clone()), SyncOp::MultiGrid);
    assert!(degraded > healthy, "{degraded} <= {healthy}");
    // A single-device grid barrier never touches the links.
    assert_eq!(run(None, SyncOp::Grid), run(Some(plan), SyncOp::Grid));
}
