//! The fault recovery layer end to end: zero-policy identity, clean-policy
//! transparency, checkpointed retry for transient kills, rank eviction for
//! persistent ones, byte-determinism across shard counts, and rollback on
//! exhausted retries.

use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use gpu_sim::kernels::{self, SyncOp};
use gpu_sim::{BufId, FaultPlan, GpuSystem, GridLaunch, RecoveryPolicy, RunArtifacts, RunOptions};
use sim_core::{Ps, SimError};

const GRID: u32 = 2;
const TPB: u32 = 64;
const REPS: usize = 4;

fn v100_small() -> GpuArch {
    let mut a = GpuArch::v100();
    a.num_sms = 4;
    a
}

fn sys() -> GpuSystem {
    GpuSystem::new(v100_small(), NodeTopology::dgx1_v100())
}

/// A multi-grid sync chain over the first `gpus` devices, one output
/// buffer per rank. Returns the launch plus the buffer ids so tests can
/// compare final launch-visible memory byte for byte.
fn chain_launch(sys: &mut GpuSystem, gpus: usize) -> (GridLaunch, Vec<BufId>) {
    let words = (GRID as u64) * (TPB as u64);
    let devices: Vec<usize> = (0..gpus).collect();
    let bufs: Vec<BufId> = devices.iter().map(|&d| sys.alloc(d, words)).collect();
    let params: Vec<Vec<u64>> = bufs.iter().map(|b| vec![b.0 as u64]).collect();
    let launch = GridLaunch::multi(
        kernels::sync_chain(SyncOp::MultiGrid, REPS),
        GRID,
        TPB,
        devices,
        params,
    );
    (launch, bufs)
}

fn words(sys: &GpuSystem, bufs: &[BufId]) -> Vec<Vec<u64>> {
    bufs.iter().map(|&b| sys.read_u64(b)).collect()
}

fn kill_rank_1(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed).kill_block(1, 0)
}

/// Without a policy nothing changes: no report is attached. With a policy
/// but no fault, the run is a clean single attempt whose every artifact
/// byte matches the unwrapped golden run.
#[test]
fn clean_policy_is_transparent_and_zero_policy_is_untouched() {
    let mut a = sys();
    let (la, ba) = chain_launch(&mut a, 4);
    let plain = a.execute(&la, &RunOptions::new()).unwrap();
    assert!(plain.recovery.is_none());

    let mut b = sys();
    let (lb, bb) = chain_launch(&mut b, 4);
    let armed = b
        .execute(
            &lb,
            &RunOptions::new().recovery(RecoveryPolicy::new().seeded(7)),
        )
        .unwrap();
    assert_eq!(plain.report, armed.report);
    assert_eq!(words(&a, &ba), words(&b, &bb));
    let rec = armed.recovery.expect("policy attaches a report");
    assert!(!rec.recovered);
    assert_eq!(rec.attempts.len(), 1);
    assert!(rec.attempts[0].error.is_none());
    assert!(!rec.attempts[0].faults_armed);
    assert_eq!(rec.recovery_cost, Ps::ZERO);
    assert_eq!(rec.effective_ranks, 4);
    assert!(rec.evicted_ranks.is_empty());
    assert!(!rec.degraded());
}

/// A transient killed block deadlocks attempt 0; the layer restores the
/// checkpoint and relaunches clean. The final report and every buffer
/// word must match an unfaulted run exactly — the checkpoint exactness
/// claim, tested bytewise.
#[test]
fn transient_kill_retries_to_the_exact_clean_result() {
    let mut golden = sys();
    let (lg, bg) = chain_launch(&mut golden, 4);
    let clean = golden.execute(&lg, &RunOptions::new()).unwrap();

    let mut s = sys();
    let (l, bufs) = chain_launch(&mut s, 4);
    let opts = RunOptions::new()
        .faults(kill_rank_1(7))
        .recovery(RecoveryPolicy::new().seeded(7).transient(1));
    let arts = s.execute(&l, &opts).unwrap();
    assert_eq!(clean.report, arts.report);
    assert_eq!(words(&golden, &bg), words(&s, &bufs));

    let rec = arts.recovery.unwrap();
    assert!(rec.recovered);
    assert_eq!(rec.attempts.len(), 2);
    assert!(
        rec.evicted_ranks.is_empty(),
        "transient kills retry, not evict"
    );
    assert_eq!(rec.effective_ranks, 4);
    assert!(rec.attempts[0].faults_armed);
    assert!(
        !rec.attempts[1].faults_armed,
        "plan disarmed after attempt 0"
    );
    assert!(rec.recovery_cost > Ps::ZERO, "deadlock time plus backoff");
    match rec.attempts[0].error.as_ref().unwrap() {
        SimError::Deadlock { faults, .. } => {
            let fp = faults.as_ref().expect("armed plan fingerprints the error");
            assert_eq!(fp.to_string(), "seed=7 killed-blocks:1");
        }
        other => panic!("expected deadlock on attempt 0, got {other:?}"),
    }
}

/// A persistent killed block cannot be retried away: the layer evicts the
/// dead rank and re-runs degraded on the survivors, at every GPU count.
#[test]
fn persistent_kill_evicts_the_dead_rank_at_2_4_6_gpus() {
    for gpus in [2usize, 4, 6] {
        let mut s = sys();
        let (l, _) = chain_launch(&mut s, gpus);
        let opts = RunOptions::new()
            .faults(kill_rank_1(7))
            .recovery(RecoveryPolicy::new().seeded(7));
        let arts = s.execute(&l, &opts).unwrap();
        let rec = arts.recovery.unwrap();
        assert_eq!(rec.evicted_ranks, vec![1], "{gpus} GPUs");
        assert_eq!(rec.evicted_devices, vec![1], "{gpus} GPUs");
        assert_eq!(rec.effective_ranks, gpus - 1);
        assert!(rec.degraded());
        assert_eq!(rec.attempts.len(), 2);
        // The successful attempt ran on every device but the evicted one.
        let survivors: Vec<usize> = (0..gpus).filter(|&d| d != 1).collect();
        assert_eq!(rec.attempts[1].devices, survivors);
        assert_eq!(arts.report.device_durations.len(), gpus - 1);
        assert!(
            rec.effective_topology.contains("[-1 evicted]"),
            "{}",
            rec.effective_topology
        );
    }
}

/// The whole recovery account — report, exec report, and final memory —
/// is byte-identical at shards 0, 1, and 4.
#[test]
fn recovery_is_byte_identical_across_shard_counts() {
    let run = |shards: usize| -> (String, Vec<Vec<u64>>) {
        let mut s = sys();
        let (l, bufs) = chain_launch(&mut s, 4);
        let opts = RunOptions::new()
            .shards(shards)
            .faults(kill_rank_1(7))
            .recovery(RecoveryPolicy::new().seeded(7));
        let arts: RunArtifacts = s.execute(&l, &opts).unwrap();
        let json = serde_json::to_string(&(arts.recovery.as_ref().unwrap(), &arts.report)).unwrap();
        (json, words(&s, &bufs))
    };
    let (j0, w0) = run(0);
    let (j1, w1) = run(1);
    let (j4, w4) = run(4);
    assert_eq!(j0, j1);
    assert_eq!(j0, j4);
    assert_eq!(w0, w1);
    assert_eq!(w0, w4);
}

/// When every retry is exhausted the error surfaces, and memory is rolled
/// back to the pre-launch checkpoint: a failed recoverable launch has no
/// partial effects.
#[test]
fn exhausted_retries_surface_the_error_and_roll_back_memory() {
    let mut s = sys();
    let (l, bufs) = chain_launch(&mut s, 4);
    let before = words(&s, &bufs);
    let opts = RunOptions::new()
        .faults(kill_rank_1(7))
        .recovery(RecoveryPolicy::new().seeded(7).evicting(false).retries(1));
    match s.execute(&l, &opts) {
        Err(SimError::Deadlock { faults, .. }) => {
            assert!(faults.is_some(), "the surfaced error keeps its fingerprint");
        }
        other => panic!("expected deadlock after exhausted retries, got {other:?}"),
    }
    assert_eq!(before, words(&s, &bufs), "rollback to the checkpoint");
}

/// Fatal errors (launch validation) are never retried.
#[test]
fn fatal_errors_fail_fast_without_attempts() {
    let mut s = sys();
    let (mut l, _) = chain_launch(&mut s, 2);
    l.grid_dim = 0;
    let opts = RunOptions::new().recovery(RecoveryPolicy::new());
    match s.execute(&l, &opts) {
        Err(SimError::InvalidLaunch(_)) => {}
        other => panic!("expected invalid launch, got {other:?}"),
    }
}
