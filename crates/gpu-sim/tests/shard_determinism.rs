//! The sharded engine's determinism contract: every artifact of a
//! multi-device launch — `ExecReport`, hazard report, profile JSON, trace —
//! is byte-identical at any `--shards` worker count, clean runs match the
//! single-queue engine's `ExecReport` exactly, faults and the watchdog
//! compose with sharding, and cross-device data access (which has no latency
//! floor to bound a lookahead window) is rejected with a clear error.

use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use gpu_sim::isa::{Instr, KernelBuilder, Operand::*};
use gpu_sim::kernels::{self, SyncOp};
use gpu_sim::{FaultPlan, GpuSystem, GridLaunch, LaunchKind, RunArtifacts, RunOptions};
use sim_core::{Ps, SimError, SimResult};
use std::sync::Arc;

fn small_v100(sms: u32) -> GpuArch {
    let mut a = GpuArch::v100();
    a.num_sms = sms;
    a
}

/// A multi-grid sync chain over `devices`, one private buffer per device.
fn mgrid_launch(
    sys: &mut GpuSystem,
    devices: Vec<usize>,
    reps: usize,
    grid_dim: u32,
    block_dim: u32,
) -> GridLaunch {
    let kernel = kernels::sync_chain(SyncOp::MultiGrid, reps);
    let words = grid_dim as u64 * block_dim as u64;
    let params = devices
        .iter()
        .map(|&d| vec![sys.alloc(d, words).0 as u64])
        .collect();
    GridLaunch {
        kernel,
        grid_dim,
        block_dim,
        kind: LaunchKind::CooperativeMultiDevice,
        devices,
        params,
        checked: false,
    }
}

fn node_sys(sms: u32) -> GpuSystem {
    GpuSystem::new(small_v100(sms), Arc::new(NodeTopology::dgx1_v100()))
}

/// Render every artifact to a comparable byte string.
fn fingerprint(arts: &RunArtifacts) -> String {
    format!(
        "report={:?}\nhazards={:?}\ntrace={:?}\nprofile={}",
        arts.report,
        arts.hazards,
        arts.trace,
        arts.profile
            .as_ref()
            .map(|p| p.to_json())
            .unwrap_or_default()
    )
}

fn run(shards: usize, opts: &RunOptions) -> SimResult<RunArtifacts> {
    let mut sys = node_sys(4);
    let launch = mgrid_launch(&mut sys, vec![0, 1, 2, 3], 3, 8, 64);
    sys.execute(&launch, &opts.clone().shards(shards))
}

#[test]
fn clean_sharded_run_matches_single_queue_report_exactly() {
    let opts = RunOptions::new();
    let legacy = run(0, &opts).unwrap();
    for shards in [1, 2, 4] {
        let sharded = run(shards, &opts).unwrap();
        assert_eq!(
            legacy.report, sharded.report,
            "sharded ExecReport must equal the single-queue engine's at {shards} shards"
        );
    }
}

#[test]
fn artifacts_are_byte_identical_at_any_worker_count() {
    let opts = RunOptions::new().check().trace(200_000).profile();
    let base = fingerprint(&run(1, &opts).unwrap());
    for shards in [2, 4, 7] {
        let other = fingerprint(&run(shards, &opts).unwrap());
        assert_eq!(base, other, "artifacts drifted at {shards} shard workers");
    }
}

#[test]
fn faults_and_watchdog_compose_with_sharding() {
    let plan = FaultPlan::seeded(7)
        .stragglers(120, 1800)
        .delay_barriers(80, 3)
        .link_flaps(2_000, 150);
    let opts = RunOptions::new()
        .profile()
        .watchdog(Ps::from_us(50))
        .faults(plan);
    let base = fingerprint(&run(1, &opts).unwrap());
    for shards in [2, 4] {
        let other = fingerprint(&run(shards, &opts).unwrap());
        assert_eq!(base, other, "faulted artifacts drifted at {shards} workers");
    }
}

#[test]
fn killed_block_deadlock_is_identical_at_any_worker_count() {
    let opts = RunOptions::new().faults(FaultPlan::seeded(1).kill_block(2, 3));
    let base = run(1, &opts).unwrap_err();
    assert!(matches!(base, SimError::Deadlock { .. }), "{base:?}");
    for shards in [2, 4] {
        assert_eq!(base, run(shards, &opts).unwrap_err());
    }
}

#[test]
fn instr_limit_error_is_identical_at_any_worker_count() {
    let mut errs = Vec::new();
    for shards in [0, 1, 2, 4] {
        let mut sys = node_sys(4).with_instr_limit(500);
        let launch = mgrid_launch(&mut sys, vec![0, 1, 2, 3], 3, 8, 64);
        errs.push(
            sys.execute(&launch, &RunOptions::new().shards(shards))
                .unwrap_err(),
        );
    }
    assert!(
        matches!(&errs[0], SimError::ProgramError(m) if m.contains("exceeded")),
        "{:?}",
        errs[0]
    );
    assert!(errs.windows(2).all(|w| w[0] == w[1]), "{errs:?}");
}

#[test]
fn cross_device_access_is_rejected_under_sharding() {
    let mut sys = node_sys(2);
    let remote = sys.alloc(0, 64);
    let mut b = KernelBuilder::new("remote-read");
    let r = b.reg();
    b.push(Instr::LdGlobal {
        dst: r,
        buf: Param(0),
        idx: Imm(0),
    });
    b.exit();
    let kernel = b.build(0);
    // Both ranks are handed the same device-0 buffer: rank 1's load is a
    // cross-device access.
    let launch = GridLaunch {
        kernel,
        grid_dim: 1,
        block_dim: 32,
        kind: LaunchKind::CooperativeMultiDevice,
        devices: vec![0, 1],
        params: vec![vec![remote.0 as u64], vec![remote.0 as u64]],
        checked: false,
    };
    // The single-queue engine supports it...
    let legacy = sys.execute(&launch, &RunOptions::new().shards(0)).unwrap();
    // ...explicitly sharded execution rejects it, and the buffers survive
    // the failed run (merge-back runs on the error path too).
    match sys.execute(&launch, &RunOptions::new().shards(2)) {
        Err(SimError::InvalidLaunch(msg)) => {
            assert!(msg.contains("sharded execution"), "{msg}");
            assert!(msg.contains("shards = 0"), "{msg}");
        }
        other => panic!("expected InvalidLaunch, got {other:?}"),
    }
    assert_eq!(sys.read_u64(remote).len(), 64);
    // ...and the process-global default (ShardPolicy::Auto) must never
    // change which launches run: the param scan spots the remote buffer
    // and keeps this launch on the single queue.
    gpu_sim::set_default_shards(2);
    let auto = sys.execute(&launch, &RunOptions::new());
    gpu_sim::set_default_shards(0);
    assert_eq!(auto.unwrap().report, legacy.report);
}

/// Single-device launches ignore the policy: there is only one shard, so the
/// single queue IS the sharded execution.
#[test]
fn single_device_launches_use_the_single_queue_at_any_policy() {
    let mut sys = GpuSystem::single(small_v100(4));
    let kernel = kernels::sync_chain(SyncOp::Grid, 4);
    let buf = sys.alloc(0, 8 * 64);
    let launch = GridLaunch::single(kernel, 8, 64, vec![buf.0 as u64]).cooperative();
    let a = sys
        .execute(&launch, &RunOptions::new().shards(0))
        .unwrap()
        .report;
    let b = sys
        .execute(&launch, &RunOptions::new().shards(4))
        .unwrap()
        .report;
    assert_eq!(a, b);
}
