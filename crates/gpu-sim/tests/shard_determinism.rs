//! The sharded engine's determinism contract, on both decomposition axes:
//! every artifact of a multi-device (by-rank) or single-device (by-SM-cluster)
//! launch — `ExecReport`, hazard report, profile JSON, trace — is
//! byte-identical at any `--shards` worker count, clean runs match the
//! single-queue engine byte for byte, faults / the watchdog / the instruction
//! limit compose with sharding, cluster store logs merge back on the error
//! path, and cross-device data access (which has no latency floor to bound a
//! lookahead window) is rejected with a clear error.

use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use gpu_sim::isa::{Instr, KernelBuilder, Operand::*, Special};
use gpu_sim::kernels::{self, SyncOp};
use gpu_sim::{FaultPlan, GpuSystem, GridLaunch, LaunchKind, RunArtifacts, RunOptions};
use sim_core::{Ps, SimError, SimResult};
use std::sync::Arc;

fn small_v100(sms: u32) -> GpuArch {
    let mut a = GpuArch::v100();
    a.num_sms = sms;
    a
}

/// A multi-grid sync chain over `devices`, one private buffer per device.
fn mgrid_launch(
    sys: &mut GpuSystem,
    devices: Vec<usize>,
    reps: usize,
    grid_dim: u32,
    block_dim: u32,
) -> GridLaunch {
    let kernel = kernels::sync_chain(SyncOp::MultiGrid, reps);
    let words = grid_dim as u64 * block_dim as u64;
    let params = devices
        .iter()
        .map(|&d| vec![sys.alloc(d, words).0 as u64])
        .collect();
    GridLaunch {
        kernel,
        grid_dim,
        block_dim,
        kind: LaunchKind::CooperativeMultiDevice,
        devices,
        params,
        checked: false,
    }
}

fn node_sys(sms: u32) -> GpuSystem {
    GpuSystem::new(small_v100(sms), Arc::new(NodeTopology::dgx1_v100()))
}

/// Render every artifact to a comparable byte string.
fn fingerprint(arts: &RunArtifacts) -> String {
    format!(
        "report={:?}\nhazards={:?}\ntrace={:?}\nprofile={}",
        arts.report,
        arts.hazards,
        arts.trace,
        arts.profile
            .as_ref()
            .map(|p| p.to_json())
            .unwrap_or_default()
    )
}

fn run(shards: usize, opts: &RunOptions) -> SimResult<RunArtifacts> {
    let mut sys = node_sys(4);
    let launch = mgrid_launch(&mut sys, vec![0, 1, 2, 3], 3, 8, 64);
    sys.execute(&launch, &opts.clone().shards(shards))
}

#[test]
fn clean_sharded_run_matches_single_queue_report_exactly() {
    let opts = RunOptions::new();
    let legacy = run(0, &opts).unwrap();
    for shards in [1, 2, 4] {
        let sharded = run(shards, &opts).unwrap();
        assert_eq!(
            legacy.report, sharded.report,
            "sharded ExecReport must equal the single-queue engine's at {shards} shards"
        );
    }
}

#[test]
fn artifacts_are_byte_identical_at_any_worker_count() {
    let opts = RunOptions::new().check().trace(200_000).profile();
    let base = fingerprint(&run(1, &opts).unwrap());
    for shards in [2, 4, 7] {
        let other = fingerprint(&run(shards, &opts).unwrap());
        assert_eq!(base, other, "artifacts drifted at {shards} shard workers");
    }
}

#[test]
fn faults_and_watchdog_compose_with_sharding() {
    let plan = FaultPlan::seeded(7)
        .stragglers(120, 1800)
        .delay_barriers(80, 3)
        .link_flaps(2_000, 150);
    let opts = RunOptions::new()
        .profile()
        .watchdog(Ps::from_us(50))
        .faults(plan);
    let base = fingerprint(&run(1, &opts).unwrap());
    for shards in [2, 4] {
        let other = fingerprint(&run(shards, &opts).unwrap());
        assert_eq!(base, other, "faulted artifacts drifted at {shards} workers");
    }
}

#[test]
fn killed_block_deadlock_is_identical_at_any_worker_count() {
    let opts = RunOptions::new().faults(FaultPlan::seeded(1).kill_block(2, 3));
    let base = run(1, &opts).unwrap_err();
    assert!(matches!(base, SimError::Deadlock { .. }), "{base:?}");
    for shards in [2, 4] {
        assert_eq!(base, run(shards, &opts).unwrap_err());
    }
}

#[test]
fn instr_limit_error_is_identical_at_any_worker_count() {
    let mut errs = Vec::new();
    for shards in [0, 1, 2, 4] {
        let mut sys = node_sys(4).with_instr_limit(500);
        let launch = mgrid_launch(&mut sys, vec![0, 1, 2, 3], 3, 8, 64);
        errs.push(
            sys.execute(&launch, &RunOptions::new().shards(shards))
                .unwrap_err(),
        );
    }
    assert!(
        matches!(&errs[0], SimError::ProgramError(m) if m.contains("exceeded")),
        "{:?}",
        errs[0]
    );
    assert!(errs.windows(2).all(|w| w[0] == w[1]), "{errs:?}");
}

#[test]
fn cross_device_access_is_rejected_under_sharding() {
    let mut sys = node_sys(2);
    let remote = sys.alloc(0, 64);
    let mut b = KernelBuilder::new("remote-read");
    let r = b.reg();
    b.push(Instr::LdGlobal {
        dst: r,
        buf: Param(0),
        idx: Imm(0),
    });
    b.exit();
    let kernel = b.build(0);
    // Both ranks are handed the same device-0 buffer: rank 1's load is a
    // cross-device access.
    let launch = GridLaunch {
        kernel,
        grid_dim: 1,
        block_dim: 32,
        kind: LaunchKind::CooperativeMultiDevice,
        devices: vec![0, 1],
        params: vec![vec![remote.0 as u64], vec![remote.0 as u64]],
        checked: false,
    };
    // The single-queue engine supports it...
    let legacy = sys.execute(&launch, &RunOptions::new().shards(0)).unwrap();
    // ...explicitly sharded execution rejects it, and the buffers survive
    // the failed run (merge-back runs on the error path too).
    match sys.execute(&launch, &RunOptions::new().shards(2)) {
        Err(SimError::InvalidLaunch(msg)) => {
            assert!(msg.contains("sharded execution"), "{msg}");
            assert!(msg.contains("shards = 0"), "{msg}");
        }
        other => panic!("expected InvalidLaunch, got {other:?}"),
    }
    assert_eq!(sys.read_u64(remote).len(), 64);
    // ...and the process-global default (ShardPolicy::Auto) must never
    // change which launches run: the param scan spots the remote buffer
    // and keeps this launch on the single queue.
    gpu_sim::set_default_shards(2);
    let auto = sys.execute(&launch, &RunOptions::new());
    gpu_sim::set_default_shards(0);
    assert_eq!(auto.unwrap().report, legacy.report);
}

// ===== SM-cluster sharding (single-device launches) ==========================

/// A figure5-shaped launch: a grid-barrier sync chain on one device, every
/// thread timing the chain and storing its elapsed cycles (store-only, so
/// cluster-eligible). 14 blocks over 7 SMs — two per cluster.
fn run_fig5(shards: usize, opts: &RunOptions) -> SimResult<RunArtifacts> {
    let mut sys = node_sys(7);
    let kernel = kernels::sync_chain(SyncOp::Grid, 3);
    let buf = sys.alloc(0, 14 * 64);
    let launch = GridLaunch::single(kernel, 14, 64, vec![buf.0 as u64]).cooperative();
    sys.execute(&launch, &opts.clone().shards(shards))
}

/// A figure9-shaped 1-GPU cell: a multi-grid sync chain launched
/// cooperatively on a single device (the paper's 1-GPU multi-grid column).
fn run_fig9_1gpu(shards: usize, opts: &RunOptions) -> SimResult<RunArtifacts> {
    let mut sys = node_sys(7);
    let launch = mgrid_launch(&mut sys, vec![0], 3, 14, 64);
    sys.execute(&launch, &opts.clone().shards(shards))
}

#[test]
fn cluster_run_matches_single_queue_byte_for_byte() {
    let opts = RunOptions::new().trace(200_000).profile();
    let base = fingerprint(&run_fig5(0, &opts).unwrap());
    for shards in [1, 2, 4, 7] {
        let other = fingerprint(&run_fig5(shards, &opts).unwrap());
        assert_eq!(
            base, other,
            "cluster artifacts drifted from the single queue at {shards} workers"
        );
    }
}

#[test]
fn cluster_mgrid_run_matches_single_queue_byte_for_byte() {
    let opts = RunOptions::new().trace(200_000).profile();
    let base = fingerprint(&run_fig9_1gpu(0, &opts).unwrap());
    for shards in [1, 2, 4, 7] {
        let other = fingerprint(&run_fig9_1gpu(shards, &opts).unwrap());
        assert_eq!(
            base, other,
            "1-GPU multi-grid cluster artifacts drifted at {shards} workers"
        );
    }
}

/// Architectures wider than the GPC cap group several SMs per cluster
/// (16 SMs → 10 clusters, six of them owning two SMs). The 7-SM tests map
/// one SM per cluster, so this pins the grouped routing: uneven grids on an
/// arch whose SM→cluster map is genuinely many-to-one.
#[test]
fn grouped_cluster_run_matches_single_queue_byte_for_byte() {
    let opts = RunOptions::new().trace(200_000).profile();
    for grid_dim in [16, 25, 32] {
        let run = |shards: usize| {
            let mut sys = node_sys(16);
            let kernel = kernels::sync_chain(SyncOp::Grid, 3);
            let buf = sys.alloc(0, grid_dim as u64 * 64);
            let launch = GridLaunch::single(kernel, grid_dim, 64, vec![buf.0 as u64]).cooperative();
            sys.execute(&launch, &opts.clone().shards(shards))
        };
        let base = fingerprint(&run(0).unwrap());
        for shards in [1, 4] {
            let other = fingerprint(&run(shards).unwrap());
            assert_eq!(
                base, other,
                "grouped-cluster artifacts drifted at grid {grid_dim} with {shards} workers"
            );
        }
    }
}

#[test]
fn cluster_faults_and_watchdog_compose() {
    let plan = FaultPlan::seeded(11)
        .stragglers(120, 1800)
        .delay_barriers(80, 3);
    let opts = RunOptions::new()
        .profile()
        .watchdog(Ps::from_us(50))
        .faults(plan);
    let base = fingerprint(&run_fig5(1, &opts).unwrap());
    for shards in [2, 4, 7] {
        let other = fingerprint(&run_fig5(shards, &opts).unwrap());
        assert_eq!(
            base, other,
            "faulted cluster artifacts drifted at {shards} workers"
        );
    }
}

#[test]
fn cluster_instr_limit_error_is_identical_at_any_worker_count() {
    let mut errs = Vec::new();
    for shards in [0, 1, 2, 4, 7] {
        let mut sys = node_sys(7).with_instr_limit(100);
        let kernel = kernels::sync_chain(SyncOp::Grid, 3);
        let buf = sys.alloc(0, 14 * 64);
        let launch = GridLaunch::single(kernel, 14, 64, vec![buf.0 as u64]).cooperative();
        errs.push(
            sys.execute(&launch, &RunOptions::new().shards(shards))
                .unwrap_err(),
        );
    }
    assert!(
        matches!(&errs[0], SimError::ProgramError(m) if m.contains("exceeded")),
        "{:?}",
        errs[0]
    );
    assert!(errs.windows(2).all(|w| w[0] == w[1]), "{errs:?}");
}

/// A store-only kernel whose last thread stores one word past the buffer:
/// the error value matches the single queue at every worker count, and the
/// logged stores merge back into the caller's buffer on the error path.
#[test]
fn cluster_store_fault_merges_stores_back_on_error_path() {
    let store_kernel = {
        let mut b = KernelBuilder::new("store-tid");
        b.push(Instr::StGlobal {
            buf: Param(0),
            idx: Sp(Special::GlobalTid),
            val: Sp(Special::GlobalTid),
        });
        b.exit();
        b.build(0)
    };
    let words = 4 * 64 - 1; // one word short: the last thread faults
    let run = |shards: usize| {
        let mut sys = node_sys(4);
        let buf = sys.alloc(0, words);
        let launch = GridLaunch::single(store_kernel.clone(), 4, 64, vec![buf.0 as u64]);
        let err = sys
            .execute(&launch, &RunOptions::new().shards(shards))
            .unwrap_err();
        (err, sys.read_u64(buf))
    };
    let (base_err, _) = run(0);
    assert!(
        matches!(&base_err, SimError::MemoryFault(m) if m.contains("beyond buffer")),
        "{base_err:?}"
    );
    let (err1, mem1) = run(1);
    assert_eq!(base_err, err1, "cluster error must match the single queue");
    // The merge-back ran: stores that executed before the fault are visible
    // in the caller's buffer, which survives at full length.
    assert_eq!(mem1.len(), words as usize);
    assert!(mem1.iter().any(|&w| w != 0), "no stores merged back");
    for shards in [2, 4, 7] {
        let (err, mem) = run(shards);
        assert_eq!(base_err, err);
        assert_eq!(mem1, mem, "merged stores drifted at {shards} workers");
    }
}

/// The fallback debug hook fires once per distinct reason; eligible launches
/// shard without touching it.
#[test]
fn fallback_hook_reports_each_reason_once() {
    let seen: Arc<std::sync::Mutex<Vec<String>>> = Arc::default();
    let sink = seen.clone();
    let scope = gpu_sim::shard_fallback_scope(Box::new(move |r| {
        sink.lock().unwrap().push(r.to_string());
    }));
    // A kernel the window protocol can't reproduce: global atomics.
    let atomic_kernel = {
        let mut b = KernelBuilder::new("atomic-bump");
        b.push(Instr::AtomicIAdd {
            dst_old: None,
            buf: Param(0),
            idx: Imm(0),
            val: Imm(1),
        });
        b.exit();
        b.build(0)
    };
    let mut sys = GpuSystem::single(small_v100(4));
    let buf = sys.alloc(0, 8);
    let launch = GridLaunch::single(atomic_kernel, 2, 32, vec![buf.0 as u64]);
    for _ in 0..2 {
        sys.execute(&launch, &RunOptions::new().shards(2)).unwrap();
    }
    // Other tests run concurrently and may report their own fallbacks; ours
    // is identified by its reason text — and deduplicated across both runs.
    let ours = |seen: &std::sync::Mutex<Vec<String>>| {
        seen.lock()
            .unwrap()
            .iter()
            .filter(|r| r.contains("global atomics"))
            .count()
    };
    assert_eq!(ours(&seen), 1, "{:?}", seen.lock().unwrap());
    // The dedup set is process-global; without a reset, whichever test saw
    // a reason first would eat it for every later observer. The reset arms
    // the same reason again for the same installed hook.
    gpu_sim::reset_shard_fallback_seen();
    sys.execute(&launch, &RunOptions::new().shards(2)).unwrap();
    assert_eq!(ours(&seen), 2, "{:?}", seen.lock().unwrap());
    // Dropping the scope uninstalls the hook and clears the dedup state.
    drop(scope);
    sys.execute(&launch, &RunOptions::new().shards(2)).unwrap();
    assert_eq!(ours(&seen), 2, "hook fired after its scope ended");
}

/// `shards(n)` on a single-device launch now means cluster sharding — the
/// explicit `BySmCluster` policy and the worker-count shorthand agree with
/// the single queue exactly.
#[test]
fn single_device_policy_hints_all_agree() {
    use gpu_sim::system::ShardPolicy;
    let mut sys = GpuSystem::single(small_v100(4));
    let kernel = kernels::sync_chain(SyncOp::Grid, 4);
    let buf = sys.alloc(0, 8 * 64);
    let launch = GridLaunch::single(kernel, 8, 64, vec![buf.0 as u64]).cooperative();
    let a = sys
        .execute(&launch, &RunOptions::new().shards(0))
        .unwrap()
        .report;
    let b = sys
        .execute(&launch, &RunOptions::new().shards(4))
        .unwrap()
        .report;
    let c = sys
        .execute(
            &launch,
            &RunOptions::new().shard_policy(ShardPolicy::BySmCluster { workers: 2 }),
        )
        .unwrap()
        .report;
    assert_eq!(a, b);
    assert_eq!(a, c);
}
