//! Second-wave engine tests: instruction semantics, divergence corners,
//! error paths, oversubscription, and multi-round barrier loops.

use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use gpu_sim::isa::{Instr, KernelBuilder, Operand::*, ShflKind, ShflMode, Special};
use gpu_sim::kernels::{self, SyncOp};
use gpu_sim::{fimm, GpuSystem, GridLaunch, RunOptions};
use sim_core::SimError;

/// Test-local shim keeping the old `run(&launch)` result shape on top of the
/// unified [`GpuSystem::execute`] API.
trait RunShim {
    fn run_plain(&mut self, l: &GridLaunch) -> sim_core::SimResult<gpu_sim::ExecReport>;
}
impl RunShim for GpuSystem {
    fn run_plain(&mut self, l: &GridLaunch) -> sim_core::SimResult<gpu_sim::ExecReport> {
        self.execute(l, &RunOptions::new()).map(|a| a.report)
    }
}

fn v100(sms: u32) -> GpuArch {
    let mut a = GpuArch::v100();
    a.num_sms = sms;
    a
}

// ---------- instruction semantics ----------------------------------------------

#[test]
fn nanosleep_nanosecond_advances_exactly_1000_ps() {
    // The ISA documents `Nanosleep` in nanoseconds while the engine runs on
    // picosecond ticks: pin the conversion at both layers. Each extra sleep
    // nanosecond must lengthen the run by exactly 1000 Ps — the scheduling
    // overhead around the sleep is identical between the two launches.
    assert_eq!(sim_core::Ps::from_ns(1), sim_core::Ps(1_000));
    let dur = |ns: u64| {
        let mut sys = GpuSystem::single(v100(1));
        sys.run_plain(&GridLaunch::single(
            kernels::sleep_kernel(ns),
            1,
            32,
            vec![],
        ))
        .unwrap()
        .duration
    };
    let base = dur(1_000);
    assert_eq!(dur(1_001) - base, sim_core::Ps(1_000));
    assert_eq!(dur(2_000) - base, sim_core::Ps(1_000_000));
}

#[test]
fn shuffle_idx_broadcasts_a_lane() {
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("shfl-idx");
    let r = b.reg();
    b.mov(r, Sp(Special::LaneId));
    b.push(Instr::Shfl {
        dst: r,
        val: Reg(r),
        kind: ShflKind::Tile,
        mode: ShflMode::Idx(7),
        width: 32,
    });
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::LaneId),
        val: Reg(r),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![out.0 as u64]))
        .unwrap();
    assert!(sys.read_u64(out).iter().all(|&v| v == 7));
}

#[test]
fn shuffle_idx_respects_tile_width() {
    // width 8: each 8-lane tile broadcasts its own lane (base + idx%8).
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("shfl-idx-w8");
    let r = b.reg();
    b.mov(r, Sp(Special::LaneId));
    b.push(Instr::Shfl {
        dst: r,
        val: Reg(r),
        kind: ShflKind::Tile,
        mode: ShflMode::Idx(3),
        width: 8,
    });
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::LaneId),
        val: Reg(r),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![out.0 as u64]))
        .unwrap();
    let v = sys.read_u64(out);
    for lane in 0..32u64 {
        assert_eq!(v[lane as usize], lane / 8 * 8 + 3, "lane {lane}");
    }
}

#[test]
fn predicated_store_skips_false_lanes() {
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("pred-st");
    let c = b.reg();
    let v = b.reg();
    b.cmp_lt(c, Sp(Special::Tid), Imm(10));
    b.mov(v, Imm(5));
    // Store 5 to shared only where tid < 10, then copy shared to global.
    b.push(Instr::StShared {
        addr: Sp(Special::Tid),
        val: Reg(v),
        volatile: false,
        pred: Some(Reg(c)),
    });
    b.bar_sync();
    b.push(Instr::LdShared {
        dst: v,
        addr: Sp(Special::Tid),
        volatile: false,
    });
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::Tid),
        val: Reg(v),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(32), 1, 32, vec![out.0 as u64]))
        .unwrap();
    let got = sys.read_u64(out);
    for (t, &g) in got.iter().enumerate().take(32) {
        assert_eq!(g, if t < 10 { 5 } else { 0 }, "tid {t}");
    }
}

#[test]
fn atomic_fadd_returns_old_values_in_order() {
    let mut sys = GpuSystem::single(v100(1));
    let cell = sys.alloc_f64(0, &[0.0]);
    let olds = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("atomic-old");
    let o = b.reg();
    b.push(Instr::AtomicFAdd {
        dst_old: Some(o),
        buf: Param(0),
        idx: Imm(0),
        val: fimm(1.0),
    });
    b.push(Instr::StGlobal {
        buf: Param(1),
        idx: Sp(Special::Tid),
        val: Reg(o),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(
        b.build(0),
        1,
        32,
        vec![cell.0 as u64, olds.0 as u64],
    ))
    .unwrap();
    assert_eq!(sys.read_f64(cell)[0], 32.0);
    let mut olds: Vec<f64> = sys.read_f64(olds);
    olds.sort_by(f64::total_cmp);
    let expect: Vec<f64> = (0..32).map(|i| i as f64).collect();
    assert_eq!(olds, expect, "each lane must see a distinct old value");
}

#[test]
fn i2f_converts_integers() {
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("i2f");
    let r = b.reg();
    b.push(Instr::I2F(r, Sp(Special::Tid)));
    b.fadd(r, Reg(r), fimm(0.5));
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::Tid),
        val: Reg(r),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![out.0 as u64]))
        .unwrap();
    let v = sys.read_f64(out);
    for (t, &x) in v.iter().enumerate().take(32) {
        assert_eq!(x, t as f64 + 0.5);
    }
}

#[test]
fn volatile_loads_see_volatile_stores_across_threads() {
    // Lane 0 volatile-stores; lane 1 reads it after a plain (non-barrier)
    // reconvergence — visible because volatile stores commit immediately.
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("vol");
    let c = b.reg();
    let v = b.reg();
    b.cmp_eq(c, Sp(Special::LaneId), Imm(0));
    b.bra_ifz(Reg(c), "rd");
    b.mov(v, Imm(99));
    b.push(Instr::StShared {
        addr: Imm(0),
        val: Reg(v),
        volatile: true,
        pred: None,
    });
    b.label("rd");
    b.push(Instr::LdShared {
        dst: v,
        addr: Imm(0),
        volatile: true,
    });
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::LaneId),
        val: Reg(v),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(4), 1, 32, vec![out.0 as u64]))
        .unwrap();
    // Lane 0 executes the store arm first (lowest PC group ordering), so by
    // the time the other lanes load, the value is committed.
    assert_eq!(sys.read_u64(out)[1], 99);
}

// ---------- configuration corners ------------------------------------------------

#[test]
fn partial_last_warp_runs_correctly() {
    // 70 threads: two full warps + one 6-lane warp.
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 70);
    let mut b = KernelBuilder::new("partial-warp");
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::Tid),
        val: Sp(Special::Tid),
    });
    b.bar_sync();
    b.exit();
    let r = sys
        .run_plain(&GridLaunch::single(b.build(0), 1, 70, vec![out.0 as u64]))
        .unwrap();
    assert_eq!(r.warps_run, 3);
    assert_eq!(sys.read_u64(out), (0u64..70).collect::<Vec<_>>());
}

#[test]
fn grid_sync_loops_for_many_rounds() {
    // 20 rounds of grid sync across 2 blocks/SM: the barrier state machine
    // must reset cleanly between rounds.
    let mut sys = GpuSystem::single(v100(4));
    let out = sys.alloc(0, 8 * 32);
    let k = kernels::sync_chain(SyncOp::Grid, 20);
    let l = GridLaunch::single(k, 8, 32, vec![out.0 as u64]).cooperative();
    let rep = sys.run_plain(&l).unwrap();
    let per = sys.read_u64(out)[0] as f64 / 20.0;
    assert!(per > 500.0, "grid sync per round {per}");
    assert_eq!(rep.blocks_run, 8);
}

#[test]
fn oversubscribed_waves_preserve_semantics() {
    // 1000 blocks on 2 SMs: every block must still run exactly once.
    let mut sys = GpuSystem::single(v100(2));
    let out = sys.alloc(0, 1000);
    let mut b = KernelBuilder::new("wave");
    let o = b.reg();
    b.push(Instr::AtomicFAdd {
        dst_old: Some(o),
        buf: Param(0),
        idx: Sp(Special::BlockId),
        val: fimm(1.0),
    });
    b.exit();
    let l = GridLaunch::single(b.build(0), 1000, 32, vec![out.0 as u64]);
    let rep = sys.run_plain(&l).unwrap();
    assert_eq!(rep.blocks_run, 1000);
    assert!(sys.read_f64(out).iter().all(|&v| v == 32.0));
}

#[test]
fn nanosleep_takes_the_lanes_maximum() {
    let mut sys = GpuSystem::single(v100(1));
    let mut b = KernelBuilder::new("sleep-max");
    let ns = b.reg();
    // lane * 100 ns: the warp sleeps for the longest lane (3100 ns).
    b.imul(ns, Sp(Special::LaneId), Imm(100));
    b.push(Instr::Nanosleep(Reg(ns)));
    b.exit();
    let r = sys
        .run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![]))
        .unwrap();
    assert!(
        (r.duration.as_ns() - 3100.0).abs() < 50.0,
        "duration {}",
        r.duration
    );
}

#[test]
fn exit_in_divergent_branch_retires_lanes() {
    // Half the warp exits early; the other half keeps working.
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("half-exit");
    let c = b.reg();
    b.cmp_lt(c, Sp(Special::LaneId), Imm(16));
    b.bra_if(Reg(c), "work");
    b.exit();
    b.label("work");
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::LaneId),
        val: Imm(1),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![out.0 as u64]))
        .unwrap();
    let v = sys.read_u64(out);
    for (lane, &x) in v.iter().enumerate().take(32) {
        assert_eq!(x, u64::from(lane < 16), "lane {lane}");
    }
}

// ---------- error paths -------------------------------------------------------------

#[test]
fn bad_buffer_id_faults() {
    let mut sys = GpuSystem::single(v100(1));
    let mut b = KernelBuilder::new("bad-buf");
    let r = b.reg();
    b.push(Instr::LdGlobal {
        dst: r,
        buf: Imm(999),
        idx: Imm(0),
    });
    b.exit();
    let e = sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![]));
    assert!(matches!(e, Err(SimError::MemoryFault(_))), "{e:?}");
}

#[test]
fn out_of_bounds_global_store_faults() {
    let mut sys = GpuSystem::single(v100(1));
    let buf = sys.alloc(0, 4);
    let mut b = KernelBuilder::new("oob");
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::Tid), // tids 4..31 are out of bounds
        val: Imm(1),
    });
    b.exit();
    assert!(sys
        .run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![buf.0 as u64]))
        .is_err());
}

#[test]
fn shared_memory_overflow_faults() {
    let mut sys = GpuSystem::single(v100(1));
    let mut b = KernelBuilder::new("smem-oob");
    b.push(Instr::LdShared {
        dst: 0,
        addr: Imm(100),
        volatile: false,
    });
    b.exit();
    // 4 words of shared memory, access at 100.
    assert!(sys
        .run_plain(&GridLaunch::single(b.build(4), 1, 32, vec![]))
        .is_err());
}

#[test]
fn infinite_loop_hits_the_instruction_limit() {
    let mut sys = GpuSystem::single(v100(1)).with_instr_limit(10_000);
    let mut b = KernelBuilder::new("forever");
    b.label("x");
    b.bra("x");
    let e = sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![]));
    assert!(matches!(e, Err(SimError::ProgramError(_))), "{e:?}");
}

// ---------- multi-device corners ----------------------------------------------------

#[test]
fn remote_memstream_pays_the_link() {
    // Streaming a buffer that lives on another GPU is much slower than
    // streaming local memory.
    let arch = v100(2);
    let topo = NodeTopology::dgx1_v100();
    let n = 1_000_000u64;

    let run_with = |owner: usize| -> sim_core::Ps {
        let mut sys = GpuSystem::new(arch.clone(), topo.clone());
        let data = sys.alloc_linear(owner, 1.0, 0.0, n);
        // Enough warps that the local run is bandwidth-bound, not
        // latency-bound, so the link difference dominates.
        let out = sys.alloc(0, 64 * 256);
        let k = kernels::stream_kernel(0);
        // Kernel runs on device 0 either way.
        let l = GridLaunch::single(k, 64, 256, vec![data.0 as u64, n, out.0 as u64]);
        sys.run_plain(&l).unwrap().duration
    };
    let local = run_with(0);
    let remote = run_with(1);
    assert!(
        remote.as_us() > 5.0 * local.as_us(),
        "local {local}, remote {remote}"
    );
}

#[test]
fn multi_grid_rounds_alternate_cleanly() {
    // Multi-round multi-grid sync across 3 GPUs: per-round cost stays flat
    // (no state leaks between rounds).
    let mut sys = GpuSystem::new(v100(4), NodeTopology::dgx1_v100());
    let bufs: Vec<u64> = (0..3).map(|d| sys.alloc(d, 4 * 32).0 as u64).collect();
    let k = kernels::sync_chain(SyncOp::MultiGrid, 6);
    let l = GridLaunch::multi(
        k,
        4,
        32,
        vec![0, 1, 2],
        bufs.iter().map(|&b| vec![b]).collect(),
    );
    sys.run_plain(&l).unwrap();
    let per6 = sys.buffer(gpu_sim::BufId(bufs[0] as u32)).load(0).unwrap() as f64 / 6.0;

    let mut sys = GpuSystem::new(v100(4), NodeTopology::dgx1_v100());
    let bufs: Vec<u64> = (0..3).map(|d| sys.alloc(d, 4 * 32).0 as u64).collect();
    let k = kernels::sync_chain(SyncOp::MultiGrid, 2);
    let l = GridLaunch::multi(
        k,
        4,
        32,
        vec![0, 1, 2],
        bufs.iter().map(|&b| vec![b]).collect(),
    );
    sys.run_plain(&l).unwrap();
    let per2 = sys.buffer(gpu_sim::BufId(bufs[0] as u32)).load(0).unwrap() as f64 / 2.0;
    assert!(
        (per6 - per2).abs() / per2 < 0.25,
        "per-round drifted: {per2} vs {per6}"
    );
}

// ---------- execution tracing --------------------------------------------------------

#[test]
fn trace_records_executed_instructions_in_time_order() {
    let mut sys = GpuSystem::single(v100(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("traced");
    let r = b.reg();
    b.mov(r, Imm(7));
    b.iadd(r, Reg(r), Imm(1));
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::Tid),
        val: Reg(r),
    });
    b.exit();
    let arts = sys
        .execute(
            &GridLaunch::single(b.build(0), 1, 32, vec![out.0 as u64]),
            &RunOptions::new().trace(100),
        )
        .unwrap();
    let (rep, trace) = (arts.report, arts.trace.unwrap());
    assert_eq!(rep.instrs_executed as usize, trace.len());
    assert_eq!(trace.len(), 4);
    for w in trace.windows(2) {
        assert!(w[1].at >= w[0].at, "trace out of order");
    }
    assert_eq!(trace[0].pc, 0);
    assert_eq!(
        trace[0].lanes,
        u32::MAX,
        "converged warp executes all lanes"
    );
    // The trace disassembles.
    let listing: Vec<String> = trace
        .iter()
        .map(|e| gpu_sim::instr_to_string(&e.instr))
        .collect();
    assert!(listing[0].starts_with("mov"), "{listing:?}");
    assert!(listing[3].starts_with("exit"), "{listing:?}");
}

#[test]
fn trace_capacity_is_respected() {
    let mut sys = GpuSystem::single(v100(1));
    let k = kernels::fadd32_chain(256);
    let out = sys.alloc(0, 32);
    let arts = sys
        .execute(
            &GridLaunch::single(k, 1, 32, vec![out.0 as u64]),
            &RunOptions::new().trace(16),
        )
        .unwrap();
    let (rep, trace) = (arts.report, arts.trace.unwrap());
    assert_eq!(trace.len(), 16);
    assert!(rep.instrs_executed > 16);
}

#[test]
fn trace_shows_divergent_lane_masks() {
    let mut sys = GpuSystem::single(v100(1));
    let mut b = KernelBuilder::new("div-trace");
    let c = b.reg();
    b.cmp_lt(c, Sp(Special::LaneId), Imm(16));
    b.bra_ifz(Reg(c), "other");
    b.iadd(c, Reg(c), Imm(0)); // taken arm
    b.exit();
    b.label("other");
    b.isub(c, Reg(c), Imm(0)); // fall-through arm
    b.exit();
    let trace = sys
        .execute(
            &GridLaunch::single(b.build(0), 1, 32, vec![]),
            &RunOptions::new().trace(100),
        )
        .unwrap()
        .trace
        .unwrap();
    let masks: Vec<u32> = trace.iter().map(|e| e.lanes).collect();
    assert!(
        masks.contains(&0x0000FFFF),
        "lower-half group missing: {masks:?}"
    );
    assert!(
        masks.contains(&0xFFFF0000),
        "upper-half group missing: {masks:?}"
    );
}
