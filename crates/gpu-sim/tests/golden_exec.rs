//! Golden `ExecReport` snapshots for canonical launches.
//!
//! These pin `{duration, instrs_executed, warps_run}` for eight launch
//! shapes spanning every barrier scope (tile / block / grid / multi-grid),
//! both calibrated architectures, and 1-SM as well as full-chip grids. Any
//! engine refactor — event queue, warp state layout, scheduling fast paths —
//! must leave every line byte-identical: these numbers are the contract that
//! performance work does not change observable simulation results.
//!
//! If a change is *supposed* to alter timing (a calibration update), rerun
//! with `UPDATE=1 cargo test -p gpu-sim --test golden_exec -- --nocapture`
//! and paste the printed block below.

use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use gpu_sim::kernels::{self, SyncOp};
use gpu_sim::{GpuSystem, GridLaunch, LaunchKind, RunOptions};
use std::sync::Arc;

const GOLDEN: &str = "\
v100-1sm-tile-chain: duration=719531 instrs=70 warps=1
v100-full-block-chain: duration=486181 instrs=14080 warps=640
v100-full-grid-chain: duration=6599493 instrs=6400 warps=640
v100-dgx1-mgrid-x2-chain: duration=27133489 instrs=1280 warps=128
p100-1sm-tile-chain: duration=168206 instrs=70 warps=1
p100-full-block-chain: duration=3938617 instrs=9856 warps=448
p100-full-grid-chain: duration=7686160 instrs=4480 warps=448
p100-pair-mgrid-x2-chain: duration=30884332 instrs=320 warps=32
";

struct Case {
    name: &'static str,
    arch: GpuArch,
    topology: NodeTopology,
    devices: Vec<usize>,
    op: SyncOp,
    reps: usize,
    grid_dim: u32,
    block_dim: u32,
}

fn one_sm(mut arch: GpuArch) -> GpuArch {
    arch.num_sms = 1;
    arch
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "v100-1sm-tile-chain",
            arch: one_sm(GpuArch::v100()),
            topology: NodeTopology::single(),
            devices: vec![0],
            op: SyncOp::Tile(32),
            reps: 64,
            grid_dim: 1,
            block_dim: 32,
        },
        Case {
            name: "v100-full-block-chain",
            arch: GpuArch::v100(),
            topology: NodeTopology::single(),
            devices: vec![0],
            op: SyncOp::Block,
            reps: 16,
            grid_dim: 80,
            block_dim: 256,
        },
        Case {
            name: "v100-full-grid-chain",
            arch: GpuArch::v100(),
            topology: NodeTopology::single(),
            devices: vec![0],
            op: SyncOp::Grid,
            reps: 4,
            grid_dim: 80,
            block_dim: 256,
        },
        Case {
            name: "v100-dgx1-mgrid-x2-chain",
            arch: GpuArch::v100(),
            topology: NodeTopology::dgx1_v100(),
            devices: vec![0, 1],
            op: SyncOp::MultiGrid,
            reps: 4,
            grid_dim: 16,
            block_dim: 128,
        },
        Case {
            name: "p100-1sm-tile-chain",
            arch: one_sm(GpuArch::p100()),
            topology: NodeTopology::single(),
            devices: vec![0],
            op: SyncOp::Tile(32),
            reps: 64,
            grid_dim: 1,
            block_dim: 32,
        },
        Case {
            name: "p100-full-block-chain",
            arch: GpuArch::p100(),
            topology: NodeTopology::single(),
            devices: vec![0],
            op: SyncOp::Block,
            reps: 16,
            grid_dim: 56,
            block_dim: 256,
        },
        Case {
            name: "p100-full-grid-chain",
            arch: GpuArch::p100(),
            topology: NodeTopology::single(),
            devices: vec![0],
            op: SyncOp::Grid,
            reps: 4,
            grid_dim: 56,
            block_dim: 256,
        },
        Case {
            name: "p100-pair-mgrid-x2-chain",
            arch: GpuArch::p100(),
            topology: NodeTopology::p100_pair(),
            devices: vec![0, 1],
            op: SyncOp::MultiGrid,
            reps: 4,
            grid_dim: 8,
            block_dim: 64,
        },
    ]
}

fn run_case(c: &Case) -> String {
    let mut sys = GpuSystem::new(c.arch.clone(), Arc::new(c.topology.clone()));
    let kernel = kernels::sync_chain(c.op, c.reps);
    let words = (c.grid_dim as u64) * (c.block_dim as u64);
    let params: Vec<Vec<u64>> = c
        .devices
        .iter()
        .map(|&d| vec![sys.alloc(d, words).0 as u64])
        .collect();
    let kind = match c.op {
        SyncOp::Grid => LaunchKind::Cooperative,
        SyncOp::MultiGrid => LaunchKind::CooperativeMultiDevice,
        _ => LaunchKind::Traditional,
    };
    let launch = GridLaunch {
        kernel,
        grid_dim: c.grid_dim,
        block_dim: c.block_dim,
        kind,
        devices: c.devices.clone(),
        params,
        checked: false,
    };
    let report = sys.execute(&launch, &RunOptions::new()).unwrap().report;
    format!(
        "{}: duration={} instrs={} warps={}\n",
        c.name, report.duration.0, report.instrs_executed, report.warps_run
    )
}

#[test]
fn golden_exec_reports_are_stable() {
    let actual: String = cases().iter().map(run_case).collect();
    if std::env::var_os("UPDATE").is_some() {
        println!("--- paste into GOLDEN ---\n{actual}--- end ---");
    }
    assert_eq!(
        actual, GOLDEN,
        "ExecReport drifted from the golden snapshot; if the timing change \
         is intentional, rerun with UPDATE=1 and refresh GOLDEN"
    );
}

/// The snapshots must not depend on instrumentation: a profiled + traced +
/// checked run reports the same `ExecReport` as the bare golden run.
#[test]
fn golden_reports_insensitive_to_instrumentation() {
    let c = &cases()[1];
    let bare = run_case(c);
    let mut sys = GpuSystem::new(c.arch.clone(), Arc::new(c.topology.clone()));
    let kernel = kernels::sync_chain(c.op, c.reps);
    let words = (c.grid_dim as u64) * (c.block_dim as u64);
    let buf = sys.alloc(0, words);
    let launch = GridLaunch::single(kernel, c.grid_dim, c.block_dim, vec![buf.0 as u64]);
    let arts = sys
        .execute(&launch, &RunOptions::new().check().trace(64).profile())
        .unwrap();
    let instrumented = format!(
        "{}: duration={} instrs={} warps={}\n",
        c.name, arts.report.duration.0, arts.report.instrs_executed, arts.report.warps_run
    );
    assert_eq!(bare, instrumented);
}
