//! End-to-end behaviour of the SIMT engine: semantics, timing shapes, and
//! the paper's qualitative observations.

use gpu_arch::GpuArch;
use gpu_node::NodeTopology;
use gpu_sim::isa::{Instr, KernelBuilder, Operand::*, ShflKind, ShflMode, Special};
use gpu_sim::kernels::{self, SyncOp};
use gpu_sim::{fimm, GpuSystem, GridLaunch, RunOptions};
use sim_core::SimError;

/// Test-local shim keeping the old `run(&launch)` result shape on top of the
/// unified [`GpuSystem::execute`] API.
trait RunShim {
    fn run_plain(&mut self, l: &GridLaunch) -> sim_core::SimResult<gpu_sim::ExecReport>;
}
impl RunShim for GpuSystem {
    fn run_plain(&mut self, l: &GridLaunch) -> sim_core::SimResult<gpu_sim::ExecReport> {
        self.execute(l, &RunOptions::new()).map(|a| a.report)
    }
}

fn v100_small(sms: u32) -> GpuArch {
    let mut a = GpuArch::v100();
    a.num_sms = sms;
    a
}

fn p100_small(sms: u32) -> GpuArch {
    let mut a = GpuArch::p100();
    a.num_sms = sms;
    a
}

// ---------- semantics ---------------------------------------------------------

#[test]
fn threads_write_their_global_ids() {
    let mut sys = GpuSystem::single(v100_small(4));
    let out = sys.alloc(0, 256);
    let mut b = KernelBuilder::new("ids");
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::GlobalTid),
        val: Sp(Special::GlobalTid),
    });
    b.exit();
    let k = b.build(0);
    let l = GridLaunch::single(k, 4, 64, vec![out.0 as u64]);
    sys.run_plain(&l).unwrap();
    let vals = sys.read_u64(out);
    assert_eq!(vals, (0u64..256).collect::<Vec<_>>());
}

#[test]
fn loop_counts_to_ten() {
    let mut sys = GpuSystem::single(v100_small(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("loop");
    let r = b.reg();
    let c = b.reg();
    b.mov(r, Imm(0));
    b.label("top");
    b.iadd(r, Reg(r), Imm(1));
    b.cmp_lt(c, Reg(r), Imm(10));
    b.bra_if(Reg(c), "top");
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::Tid),
        val: Reg(r),
    });
    b.exit();
    let k = b.build(0);
    sys.run_plain(&GridLaunch::single(k, 1, 32, vec![out.0 as u64]))
        .unwrap();
    assert!(sys.read_u64(out).iter().all(|&v| v == 10));
}

#[test]
fn float_math_works() {
    let mut sys = GpuSystem::single(v100_small(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("fmath");
    let r = b.reg();
    b.mov(r, fimm(1.5));
    b.fadd(r, Reg(r), fimm(2.25));
    b.push(Instr::FMul(r, Reg(r), fimm(2.0)));
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::Tid),
        val: Reg(r),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![out.0 as u64]))
        .unwrap();
    assert_eq!(sys.read_f64(out)[0], 7.5);
}

#[test]
fn shuffle_down_moves_values() {
    let mut sys = GpuSystem::single(v100_small(1));
    let out = sys.alloc(0, 32);
    let mut b = KernelBuilder::new("shfl");
    let r = b.reg();
    b.mov(r, Sp(Special::LaneId));
    b.push(Instr::Shfl {
        dst: r,
        val: Reg(r),
        kind: ShflKind::Tile,
        mode: ShflMode::Down(4),
        width: 32,
    });
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::LaneId),
        val: Reg(r),
    });
    b.exit();
    sys.run_plain(&GridLaunch::single(b.build(0), 1, 32, vec![out.0 as u64]))
        .unwrap();
    let vals = sys.read_u64(out);
    // lane L gets lane L+4's value; top 4 lanes keep their own.
    for (l, &v) in vals.iter().enumerate().take(28) {
        assert_eq!(v, l as u64 + 4);
    }
    for (l, &v) in vals.iter().enumerate().skip(28).take(4) {
        assert_eq!(v, l as u64);
    }
}

#[test]
fn memstream_sums_match_on_both_backings() {
    let mut sys = GpuSystem::single(v100_small(2));
    let n = 10_000u64;
    let dense_vals: Vec<f64> = (0..n).map(|i| (i % 97) as f64 * 0.5).collect();
    let expect: f64 = dense_vals.iter().sum();
    let data = sys.alloc_f64(0, &dense_vals);
    let out = sys.alloc(0, 2 * 64);
    let k = kernels::stream_kernel(1);
    let l = GridLaunch::single(k, 2, 64, vec![data.0 as u64, n, out.0 as u64]);
    sys.run_plain(&l).unwrap();
    let total: f64 = sys.read_f64(out).iter().sum();
    assert!(
        (total - expect).abs() < 1e-6 * expect.max(1.0),
        "{total} vs {expect}"
    );
}

// ---------- timing: intra-SM methods ------------------------------------------

/// Wong's chain must recover the FP32 add latency: 4 cycles on V100, 6 on
/// P100 (§IX-D's cross-validation anchor).
#[test]
fn wong_chain_recovers_fadd32_latency() {
    for (arch, expect) in [(v100_small(1), 4.0), (p100_small(1), 6.0)] {
        let mut sys = GpuSystem::single(arch);
        let out = sys.alloc(0, 32);
        let reps = 512;
        let k = kernels::fadd32_chain(reps);
        sys.run_plain(&GridLaunch::single(k, 1, 32, vec![out.0 as u64]))
            .unwrap();
        let cycles = sys.read_u64(out)[0] as f64;
        let per = cycles / reps as f64;
        assert!(
            (per - expect).abs() < 0.5,
            "measured {per:.2} cycles, expected {expect}"
        );
    }
}

#[test]
fn tile_sync_latency_near_table2() {
    // V100: 14 cycles; P100: 1 cycle (non-blocking fence).
    for (arch, expect, tol) in [(v100_small(1), 14.0, 2.0), (p100_small(1), 1.0, 1.5)] {
        let mut sys = GpuSystem::single(arch);
        let out = sys.alloc(0, 32);
        let reps = 128;
        let k = kernels::sync_chain(SyncOp::Tile(32), reps);
        sys.run_plain(&GridLaunch::single(k, 1, 32, vec![out.0 as u64]))
            .unwrap();
        let per = sys.read_u64(out)[0] as f64 / reps as f64;
        assert!(
            (per - expect).abs() <= tol,
            "tile sync {per:.2} cycles, expected ~{expect}"
        );
    }
}

#[test]
fn tile_sync_latency_insensitive_to_group_size() {
    // Paper: tile width does not change latency (merged instruction).
    let mut per_width = Vec::new();
    for width in [1u32, 2, 4, 8, 16, 32] {
        let mut sys = GpuSystem::single(v100_small(1));
        let out = sys.alloc(0, 32);
        let k = kernels::sync_chain(SyncOp::Tile(width), 64);
        sys.run_plain(&GridLaunch::single(k, 1, 32, vec![out.0 as u64]))
            .unwrap();
        per_width.push(sys.read_u64(out)[0] as f64 / 64.0);
    }
    let min = per_width.iter().cloned().fold(f64::MAX, f64::min);
    let max = per_width.iter().cloned().fold(0.0f64, f64::max);
    assert!(max - min < 1.0, "{per_width:?}");
}

#[test]
fn partial_coalesced_sync_is_slow_on_volta_only() {
    // V100: 108-cycle software path for groups of 1-31; P100: ~1 cycle.
    let mut sys = GpuSystem::single(v100_small(1));
    let out = sys.alloc(0, 32);
    let k = kernels::coalesced_partial_chain(16, 64);
    sys.run_plain(&GridLaunch::single(k, 1, 32, vec![out.0 as u64]))
        .unwrap();
    let per = sys.read_u64(out)[0] as f64 / 64.0;
    assert!(
        (per - 108.0).abs() < 10.0,
        "V100 partial coalesced {per:.1}"
    );

    let mut sys = GpuSystem::single(p100_small(1));
    let out = sys.alloc(0, 32);
    let k = kernels::coalesced_partial_chain(16, 64);
    sys.run_plain(&GridLaunch::single(k, 1, 32, vec![out.0 as u64]))
        .unwrap();
    let per = sys.read_u64(out)[0] as f64 / 64.0;
    assert!(per < 5.0, "P100 partial coalesced {per:.1}");
}

#[test]
fn block_sync_latency_near_table2() {
    // Single warp dependent chain: ~22 cycles V100, ~218 P100.
    for (arch, expect, tol) in [(v100_small(1), 22.0, 3.0), (p100_small(1), 218.0, 12.0)] {
        let mut sys = GpuSystem::single(arch);
        let out = sys.alloc(0, 32);
        let reps = 64;
        let k = kernels::sync_chain(SyncOp::Block, reps);
        sys.run_plain(&GridLaunch::single(k, 1, 32, vec![out.0 as u64]))
            .unwrap();
        let per = sys.read_u64(out)[0] as f64 / reps as f64;
        assert!(
            (per - expect).abs() <= tol,
            "block sync {per:.2} cycles, expected ~{expect}"
        );
    }
}

#[test]
fn block_sync_scales_with_warp_count() {
    // Fig. 4: more active warps -> more arrival serialization per sync.
    let mut lat = Vec::new();
    for threads in [32u32, 256, 1024] {
        let mut sys = GpuSystem::single(v100_small(1));
        let out = sys.alloc(0, threads as u64);
        let k = kernels::sync_chain(SyncOp::Block, 32);
        sys.run_plain(&GridLaunch::single(k, 1, threads, vec![out.0 as u64]))
            .unwrap();
        let per = sys.read_u64(out)[0] as f64 / 32.0;
        lat.push(per);
    }
    assert!(lat[0] < lat[1] && lat[1] < lat[2], "{lat:?}");
    // 32 warps: ~ 20 + 2.1*32 = 87 cycles.
    assert!(
        (lat[2] - 87.0).abs() < 15.0,
        "1024-thread block sync {lat:?}"
    );
}

// ---------- grid & multi-grid barriers -----------------------------------------

#[test]
fn grid_sync_completes_and_orders_memory() {
    // Producer blocks write, grid.sync, consumer blocks read.
    let mut sys = GpuSystem::single(v100_small(4));
    let buf = sys.alloc(0, 4);
    let out = sys.alloc(0, 4);
    let mut b = KernelBuilder::new("gs-order");
    let c = b.reg();
    let v = b.reg();
    // block 0 writes 42+blockid to buf[blockid]
    b.cmp_eq(c, Sp(Special::Tid), Imm(0));
    b.bra_ifz(Reg(c), "sync");
    b.iadd(v, Sp(Special::BlockId), Imm(42));
    b.push(Instr::StGlobal {
        buf: Param(0),
        idx: Sp(Special::BlockId),
        val: Reg(v),
    });
    b.label("sync");
    b.grid_sync();
    // After the barrier every block 's thread 0 reads its neighbour's slot.
    b.cmp_eq(c, Sp(Special::Tid), Imm(0));
    b.bra_ifz(Reg(c), "out");
    let nb = b.reg();
    b.iadd(nb, Sp(Special::BlockId), Imm(1));
    b.push(Instr::IMin(nb, Reg(nb), Imm(3)));
    b.push(Instr::LdGlobal {
        dst: v,
        buf: Param(0),
        idx: Reg(nb),
    });
    b.push(Instr::StGlobal {
        buf: Param(1),
        idx: Sp(Special::BlockId),
        val: Reg(v),
    });
    b.label("out");
    b.exit();
    let k = b.build(0);
    let l = GridLaunch::single(k, 4, 32, vec![buf.0 as u64, out.0 as u64]).cooperative();
    sys.run_plain(&l).unwrap();
    assert_eq!(sys.read_u64(out), vec![43, 44, 45, 45]);
}

#[test]
fn grid_sync_latency_grows_with_blocks_per_sm() {
    // Fig. 5: latency driven by blocks/SM far more than threads/block.
    let arch = GpuArch::v100();
    let mut by_blocks = Vec::new();
    for bpsm in [1u32, 2, 4] {
        let mut sys = GpuSystem::single(arch.clone());
        let out = sys.alloc(0, (80 * bpsm * 32) as u64);
        let k = kernels::sync_chain(SyncOp::Grid, 4);
        let l = GridLaunch::single(k, 80 * bpsm, 32, vec![out.0 as u64]).cooperative();
        sys.run_plain(&l).unwrap();
        by_blocks.push(sys.read_u64(out)[0] as f64 / 4.0);
    }
    assert!(
        by_blocks[0] < by_blocks[1] && by_blocks[1] < by_blocks[2],
        "{by_blocks:?}"
    );
}

#[test]
fn multi_grid_sync_runs_on_two_gpus() {
    let mut sys = GpuSystem::new(GpuArch::v100(), NodeTopology::dgx1_v100());
    let out0 = sys.alloc(0, 32 * 80);
    let out1 = sys.alloc(1, 32 * 80);
    let k = kernels::sync_chain(SyncOp::MultiGrid, 2);
    let l = GridLaunch::multi(
        k,
        80,
        32,
        vec![0, 1],
        vec![vec![out0.0 as u64], vec![out1.0 as u64]],
    );
    let r = sys.run_plain(&l).unwrap();
    // Multi-grid across NVLink costs several microseconds per round.
    assert!(r.duration.as_us() > 5.0, "duration {}", r.duration);
    assert_eq!(r.device_durations.len(), 2);
}

// ---------- §VIII-B deadlocks ---------------------------------------------------

#[test]
fn partial_grid_sync_deadlocks() {
    // Only even blocks call grid.sync(): deadlock, as the paper observed.
    let mut sys = GpuSystem::single(v100_small(4));
    let mut b = KernelBuilder::new("partial-grid");
    let c = b.reg();
    let bit = b.reg();
    b.push(Instr::IAnd(bit, Sp(Special::BlockId), Imm(1)));
    b.cmp_eq(c, Reg(bit), Imm(0));
    b.bra_ifz(Reg(c), "out");
    b.grid_sync();
    b.label("out");
    b.exit();
    let k = b.build(0);
    let l = GridLaunch::single(k, 4, 32, vec![]).cooperative();
    match sys.run_plain(&l) {
        Err(SimError::Deadlock { blocked, .. }) => {
            assert!(
                blocked.iter().any(|s| s.contains("grid barrier")),
                "{blocked:?}"
            );
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn partial_multi_grid_sync_deadlocks() {
    // Only GPU 0 calls multi_grid.sync(): deadlock.
    let mut sys = GpuSystem::new(v100_small(2), NodeTopology::dgx1_v100());
    let mut b = KernelBuilder::new("partial-mgrid");
    let c = b.reg();
    b.cmp_eq(c, Sp(Special::GpuRank), Imm(0));
    b.bra_ifz(Reg(c), "out");
    b.multi_grid_sync();
    b.label("out");
    b.exit();
    let k = b.build(0);
    let l = GridLaunch::multi(k, 2, 32, vec![0, 1], vec![vec![], vec![]]);
    assert!(matches!(sys.run_plain(&l), Err(SimError::Deadlock { .. })));
}

#[test]
fn block_sync_with_exited_threads_does_not_deadlock() {
    // Half of each warp exits early; the rest __syncthreads: completes
    // (exited threads are not counted), matching observed CUDA behaviour.
    let mut sys = GpuSystem::single(v100_small(1));
    let mut b = KernelBuilder::new("partial-block");
    let c = b.reg();
    b.cmp_lt(c, Sp(Special::Tid), Imm(16));
    b.bra_ifz(Reg(c), "out");
    b.bar_sync();
    b.label("out");
    b.exit();
    let k = b.build(0);
    let l = GridLaunch::single(k, 1, 64, vec![]);
    sys.run_plain(&l).unwrap();
}

#[test]
fn warp_barrier_with_exited_lanes_completes() {
    let mut sys = GpuSystem::single(v100_small(1));
    let mut b = KernelBuilder::new("partial-warp");
    let c = b.reg();
    b.cmp_lt(c, Sp(Special::LaneId), Imm(8));
    b.bra_ifz(Reg(c), "out");
    b.push(Instr::SyncTile { width: 32 });
    b.label("out");
    b.exit();
    let k = b.build(0);
    sys.run_plain(&GridLaunch::single(k, 1, 32, vec![]))
        .unwrap();
}

// ---------- §VIII-A / Fig. 18: does a warp barrier actually block? ---------------

#[test]
fn warp_probe_v100_blocks_until_last_arrival() {
    let mut sys = GpuSystem::single(v100_small(1));
    let starts_buf = sys.alloc(0, 32);
    let ends_buf = sys.alloc(0, 32);
    let k = kernels::warp_probe();
    sys.run_plain(&GridLaunch::single(
        k,
        1,
        32,
        vec![starts_buf.0 as u64, ends_buf.0 as u64],
    ))
    .unwrap();
    let starts = sys.read_u64(starts_buf);
    let ends = sys.read_u64(ends_buf);
    let max_start = *starts.iter().max().unwrap();
    let min_start = *starts.iter().min().unwrap();
    // Start staircase spans thousands of cycles (paper: ~12k).
    assert!(
        max_start - min_start > 3_000,
        "staircase span {}",
        max_start - min_start
    );
    // Barrier blocks: every end is after the last start.
    assert!(
        ends.iter().all(|&e| e >= max_start),
        "V100 ends must trail last arrival"
    );
    // Ends cluster after the barrier: their spread is small relative to the
    // start staircase (post-barrier clock reads still serialize per lane).
    let spread = ends.iter().max().unwrap() - ends.iter().min().unwrap();
    assert!(
        (spread as f64) < 0.25 * (max_start - min_start) as f64,
        "end spread {spread} vs staircase {}",
        max_start - min_start
    );
}

#[test]
fn warp_probe_p100_does_not_block() {
    let mut sys = GpuSystem::single(p100_small(1));
    let starts_buf = sys.alloc(0, 32);
    let ends_buf = sys.alloc(0, 32);
    let k = kernels::warp_probe();
    sys.run_plain(&GridLaunch::single(
        k,
        1,
        32,
        vec![starts_buf.0 as u64, ends_buf.0 as u64],
    ))
    .unwrap();
    let starts = sys.read_u64(starts_buf);
    let ends = sys.read_u64(ends_buf);
    let max_start = *starts.iter().max().unwrap();
    // Early lanes finish long before the last lane even starts.
    let early_end = ends.iter().min().unwrap();
    assert!(*early_end < max_start, "P100 barrier must not block");
    // Ends follow the staircase: each lane's end shortly after its start.
    for l in 0..32 {
        assert!(
            ends[l] >= starts[l] && ends[l] - starts[l] < 300,
            "lane {l}"
        );
    }
}

// ---------- nanosleep & clocks ---------------------------------------------------

#[test]
fn nanosleep_controls_kernel_duration() {
    let mut sys = GpuSystem::single(v100_small(1));
    let k = kernels::sleep_kernel(10_000); // 10 us
    let r = sys
        .run_plain(&GridLaunch::single(k, 1, 32, vec![]))
        .unwrap();
    assert!((r.duration.as_us() - 10.0).abs() < 0.5, "{}", r.duration);
}

#[test]
fn report_counts_blocks_and_warps() {
    let mut sys = GpuSystem::single(v100_small(2));
    let k = kernels::null_kernel();
    let r = sys
        .run_plain(&GridLaunch::single(k, 6, 128, vec![]))
        .unwrap();
    assert_eq!(r.blocks_run, 6);
    assert_eq!(r.warps_run, 6 * 4);
}
